package sweep

// Journal v2: a crash-only, per-record checksummed checkpoint log.
//
// The v1 journal was a plain CSV file — readable, but a single torn
// write (power loss mid-append) made the whole file unparsable and
// forced the operator to delete hours of finished work. v2 frames
// every record so the loader can tell exactly where a crash landed
// and salvage everything before it:
//
//	gpuscale-journal v2\n
//	<crc32:8-hex> <len:decimal> <json-payload>\n
//	<crc32:8-hex> <len:decimal> <json-payload>\n
//	...
//
// The CRC32 (IEEE) covers the JSON payload bytes only. The first
// record describes the configuration grid (so a journal can never be
// resumed against the wrong space); every later record is one
// completed kernel row. Recovery scans records in order and truncates
// the file at the first framing, checksum, parse, or validation
// failure instead of erroring — a torn tail costs at most the row
// that was being written. Appends are fsynced and self-healing: a
// failed write truncates back to the last known-good offset so the
// in-process journal never accumulates garbage.
//
// v1 CSV journals (and completed WriteCSV archives) are still
// accepted: complete all-OK rows are salvaged and the file is
// migrated to v2 atomically (temp file + fsync + rename).

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
)

// journalMagic is the version header; bumping the version means old
// binaries refuse the file instead of misreading it.
const journalMagic = "gpuscale-journal v2\n"

// journalRecord is the JSON payload of one framed record: either a
// space record (Space set, row fields empty) or a row record (Kernel
// and the three planes set). Cells in a row record are all StatusOK
// by construction — AppendRow refuses incomplete rows — so status is
// not stored.
type journalRecord struct {
	Space  *journalSpace `json:"space,omitempty"`
	Kernel string        `json:"kernel,omitempty"`
	Tput   []float64     `json:"tput,omitempty"`
	TimeNS []float64     `json:"time_ns,omitempty"`
	Bound  []int         `json:"bound,omitempty"`
}

// journalSpace pins the configuration grid a journal was written for.
type journalSpace struct {
	CUs  []int     `json:"cus"`
	Core []float64 `json:"core_mhz"`
	Mem  []float64 `json:"mem_mhz"`
}

func (js *journalSpace) matches(s hw.Space) bool {
	if len(js.CUs) != len(s.CUCounts) || len(js.Core) != len(s.CoreClocksMHz) || len(js.Mem) != len(s.MemClocksMHz) {
		return false
	}
	for i, v := range js.CUs {
		if v != s.CUCounts[i] {
			return false
		}
	}
	for i, v := range js.Core {
		if v != s.CoreClocksMHz[i] {
			return false
		}
	}
	for i, v := range js.Mem {
		if v != s.MemClocksMHz[i] {
			return false
		}
	}
	return true
}

// SalvageReport describes what recovery had to discard to make a
// journal readable again. gpusweep surfaces a non-nil report as a
// distinct exit code so scripts notice silent truncation.
type SalvageReport struct {
	// DroppedBytes is how much of the file tail was cut off.
	DroppedBytes int64
	// DroppedRecords approximates how many records the dropped tail
	// held (newline count — a torn record has no reliable framing).
	DroppedRecords int
	// MigratedV1 reports that the file was a v1 CSV journal and has
	// been rewritten in v2 format.
	MigratedV1 bool
	// Reason says what stopped the scan, for logs.
	Reason string
}

// JournalOptions tunes journal construction; the zero value is
// production behavior.
type JournalOptions struct {
	// WrapWriter, if non-nil, wraps the file handle the journal
	// appends through. It exists so fault injection (torn writes) can
	// interpose deterministically; see fault.Injector.WrapWriter.
	WrapWriter func(io.Writer) io.Writer
}

// Journal is an append-only, checksummed checkpoint log for a sweep:
// completed kernel rows are framed, CRC'd and fsynced as they finish,
// and reopening the file recovers them — salvaging past any torn or
// corrupt tail — so a Resume only recomputes what is missing.
type Journal struct {
	space   hw.Space
	path    string
	prior   *Matrix
	salvage *SalvageReport

	mu   sync.Mutex
	f    *os.File
	w    io.Writer // f, possibly wrapped for fault injection
	good int64     // clean prefix length; appends truncate back here on error
}

// OpenJournal opens or creates a sweep journal at path. An existing
// v2 file is scanned record by record and truncated at the first
// corrupt record; a v1 CSV journal (or completed archive) is salvaged
// and migrated to v2; a file that is neither is rejected rather than
// overwritten. Check Salvage() after opening to learn whether
// recovery had to drop anything.
func OpenJournal(path string, space hw.Space) (*Journal, error) {
	return OpenJournalWith(path, space, JournalOptions{})
}

// OpenJournalWith is OpenJournal with explicit options.
func OpenJournalWith(path string, space hw.Space, opts JournalOptions) (*Journal, error) {
	if space.Size() == 0 {
		return nil, fmt.Errorf("sweep: journal %s: empty configuration space", path)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: opening journal: %w", err)
	}
	j := &Journal{space: space, path: path, f: f, w: io.Writer(f)}
	if opts.WrapWriter != nil {
		j.w = opts.WrapWriter(f)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: reading journal: %w", err)
	}
	switch {
	case len(data) == 0:
		if err := j.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	case isTornMagic(data):
		// Crash during the very first header write: nothing of value
		// was ever in the file.
		if err := j.reset(int64(len(data)), "torn journal header"); err != nil {
			f.Close()
			return nil, err
		}
	case bytes.HasPrefix(data, []byte(journalMagic)):
		if err := j.recoverV2(data); err != nil {
			f.Close()
			return nil, err
		}
	case looksLikeSweepCSV(data):
		if err := j.migrateV1(data); err != nil {
			f.Close()
			return nil, err
		}
	default:
		f.Close()
		return nil, fmt.Errorf("sweep: journal %s is neither a v2 journal nor a sweep CSV (delete it to start over)", path)
	}
	return j, nil
}

// isTornMagic reports whether data is a proper prefix of the magic
// header — the signature of a crash during journal creation.
func isTornMagic(data []byte) bool {
	return len(data) < len(journalMagic) && bytes.HasPrefix([]byte(journalMagic), data)
}

// looksLikeSweepCSV sniffs a v1 journal / WriteCSV archive by its
// header line.
func looksLikeSweepCSV(data []byte) bool {
	return bytes.HasPrefix(data, []byte("kernel,"))
}

// writeHeader initializes a fresh journal: magic line plus the space
// record, in one write, fsynced.
func (j *Journal) writeHeader() error {
	rec := journalRecord{Space: &journalSpace{
		CUs:  j.space.CUCounts,
		Core: j.space.CoreClocksMHz,
		Mem:  j.space.MemClocksMHz,
	}}
	framed, err := frameRecord(rec)
	if err != nil {
		return err
	}
	header := append([]byte(journalMagic), framed...)
	if err := j.writeAt(j.good, header); err != nil {
		return fmt.Errorf("sweep: writing journal header: %w", err)
	}
	return nil
}

// reset truncates the file to empty and writes a fresh header,
// recording what was dropped.
func (j *Journal) reset(droppedBytes int64, reason string) error {
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("sweep: resetting journal: %w", err)
	}
	j.good = 0
	if err := j.writeHeader(); err != nil {
		return err
	}
	if droppedBytes > 0 {
		j.salvage = &SalvageReport{DroppedBytes: droppedBytes, DroppedRecords: 1, Reason: reason}
	}
	return nil
}

// recoverV2 scans an existing v2 file, truncating at the first bad
// record. A clean file costs one pass and no writes.
func (j *Journal) recoverV2(data []byte) error {
	prior, good, reason, err := scanJournal(data, j.space)
	if err != nil {
		return err
	}
	if good == 0 {
		// Header or space record was torn/corrupt — start over.
		return j.reset(int64(len(data)), reason)
	}
	if good < int64(len(data)) {
		dropped := data[good:]
		if err := j.f.Truncate(good); err != nil {
			return fmt.Errorf("sweep: truncating corrupt journal tail: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("sweep: truncating corrupt journal tail: %w", err)
		}
		j.salvage = &SalvageReport{
			DroppedBytes:   int64(len(dropped)),
			DroppedRecords: countRecords(dropped),
			Reason:         reason,
		}
	}
	j.good = good
	if _, err := j.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("sweep: seeking journal: %w", err)
	}
	j.prior = prior
	return nil
}

// countRecords approximates how many records a byte region held.
func countRecords(b []byte) int {
	n := bytes.Count(b, []byte{'\n'})
	if len(b) > 0 && b[len(b)-1] != '\n' {
		n++
	}
	return n
}

// scanJournal walks a v2 journal image and returns the recovered
// matrix (nil if no rows), the clean prefix length in bytes, and a
// human-readable reason when the scan stopped before the end. The
// error return is reserved for files that must not be silently
// repaired: a journal written for a different configuration space.
// good == 0 with nil error means nothing before the space record was
// usable and the caller should start fresh.
func scanJournal(data []byte, space hw.Space) (m *Matrix, good int64, reason string, err error) {
	if !bytes.HasPrefix(data, []byte(journalMagic)) {
		return nil, 0, "missing journal magic", nil
	}
	off := int64(len(journalMagic))
	nCfg := space.Size()
	rows := map[string]int{}
	sawSpace := false
	for off < int64(len(data)) {
		rec, next, why := parseRecord(data, off)
		if why != "" {
			return m, journalGood(sawSpace, off), fmt.Sprintf("%s at byte %d", why, off), nil
		}
		if rec.Space != nil {
			if sawSpace {
				return m, off, fmt.Sprintf("duplicate space record at byte %d", off), nil
			}
			if !rec.Space.matches(space) {
				return nil, 0, "", fmt.Errorf("sweep: journal was written for a different configuration space")
			}
			sawSpace = true
			off = next
			continue
		}
		if !sawSpace {
			return nil, 0, fmt.Sprintf("row record before space record at byte %d", off), nil
		}
		if why := validateRowRecord(rec, nCfg); why != "" {
			return m, off, fmt.Sprintf("%s at byte %d", why, off), nil
		}
		if m == nil {
			m = &Matrix{Space: space}
		}
		ri, ok := rows[rec.Kernel]
		if !ok {
			ri = len(m.Kernels)
			rows[rec.Kernel] = ri
			m.Kernels = append(m.Kernels, rec.Kernel)
			m.Throughput = append(m.Throughput, nil)
			m.TimeNS = append(m.TimeNS, nil)
			m.Bound = append(m.Bound, nil)
			m.Status = append(m.Status, nil)
		}
		bounds := make([]gcn.Bound, nCfg)
		status := make([]CellStatus, nCfg) // all StatusOK
		for i, b := range rec.Bound {
			bounds[i] = gcn.Bound(b)
		}
		m.Throughput[ri] = rec.Tput
		m.TimeNS[ri] = rec.TimeNS
		m.Bound[ri] = bounds
		m.Status[ri] = status
		off = next
	}
	if !sawSpace {
		// Magic with no space record: a write tore exactly at the
		// header boundary. Nothing is salvageable past the magic.
		return nil, 0, "journal has no space record", nil
	}
	return m, off, "", nil
}

// journalGood maps "scan stopped at off" to a truncation point: if
// the space record itself never parsed, nothing is salvageable.
func journalGood(sawSpace bool, off int64) int64 {
	if !sawSpace {
		return 0
	}
	return off
}

// parseRecord decodes one framed record starting at off. It returns
// the record, the offset just past its trailing newline, and a
// non-empty reason on any framing/checksum/parse failure.
func parseRecord(data []byte, off int64) (rec journalRecord, next int64, reason string) {
	rest := data[off:]
	// Framing: 8 hex digits, space, decimal length, space.
	sp1 := bytes.IndexByte(rest, ' ')
	if sp1 != 8 {
		return rec, 0, "bad record framing"
	}
	crcWant, err := strconv.ParseUint(string(rest[:8]), 16, 32)
	if err != nil {
		return rec, 0, "bad record checksum field"
	}
	rest2 := rest[9:]
	sp2 := bytes.IndexByte(rest2, ' ')
	if sp2 <= 0 || sp2 > 10 {
		return rec, 0, "bad record framing"
	}
	plen, err := strconv.ParseInt(string(rest2[:sp2]), 10, 32)
	if err != nil || plen <= 0 {
		return rec, 0, "bad record length field"
	}
	payloadStart := int64(9 + sp2 + 1)
	if payloadStart+plen+1 > int64(len(rest)) {
		return rec, 0, "torn record"
	}
	payload := rest[payloadStart : payloadStart+plen]
	if rest[payloadStart+plen] != '\n' {
		return rec, 0, "bad record framing"
	}
	if crc32.ChecksumIEEE(payload) != uint32(crcWant) {
		return rec, 0, "record checksum mismatch"
	}
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return rec, 0, "unparsable record payload"
	}
	if dec.More() {
		return rec, 0, "trailing data in record payload"
	}
	return rec, off + payloadStart + plen + 1, ""
}

// validateRowRecord applies the same hygiene as the CSV loader:
// journaled cells are all StatusOK, so every measurement must be a
// positive finite number and every bound in range. Returns a reason
// or "".
func validateRowRecord(rec journalRecord, nCfg int) string {
	if rec.Kernel == "" {
		return "record with no kernel"
	}
	if len(rec.Tput) != nCfg || len(rec.TimeNS) != nCfg || len(rec.Bound) != nCfg {
		return fmt.Sprintf("row record for %q has wrong plane length", rec.Kernel)
	}
	for i := range rec.Tput {
		if !(rec.Tput[i] > 0) || math.IsInf(rec.Tput[i], 0) {
			return fmt.Sprintf("row record for %q has out-of-range throughput", rec.Kernel)
		}
		if !(rec.TimeNS[i] > 0) || math.IsInf(rec.TimeNS[i], 0) {
			return fmt.Sprintf("row record for %q has out-of-range time", rec.Kernel)
		}
		if rec.Bound[i] < int(gcn.BoundCompute) || rec.Bound[i] > int(gcn.BoundLaunch) {
			return fmt.Sprintf("row record for %q has unknown bound", rec.Kernel)
		}
	}
	return ""
}

// frameRecord renders a record in wire format:
// "<crc32:8hex> <len> <payload>\n".
func frameRecord(rec journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("sweep: encoding journal record: %w", err)
	}
	return []byte(fmt.Sprintf("%08x %d %s\n", crc32.ChecksumIEEE(payload), len(payload), payload)), nil
}

// writeAt appends b at offset off through the (possibly wrapped)
// writer, fsyncs, and advances the clean-prefix marker. On any
// failure — including a short (torn) write — the file is truncated
// back to the clean prefix so the journal self-heals in process.
func (j *Journal) writeAt(off int64, b []byte) error {
	if _, err := j.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	n, err := j.w.Write(b)
	if err == nil && n != len(b) {
		err = io.ErrShortWrite
	}
	if err == nil {
		err = j.f.Sync()
	}
	if err != nil {
		// Cut whatever partial bytes landed; keep the journal clean.
		j.f.Truncate(off)
		j.f.Sync()
		j.f.Seek(off, io.SeekStart)
		return err
	}
	j.good = off + int64(len(b))
	return nil
}

// migrateV1 salvages a v1 CSV journal (or a completed WriteCSV
// archive) and atomically rewrites the file in v2 format. Only
// complete all-OK kernel rows survive — exactly what v1's AppendRow
// ever wrote — and a torn CSV tail is dropped rather than fatal.
func (j *Journal) migrateV1(data []byte) error {
	prior, droppedBytes, droppedRecords := salvageV1CSV(data, j.space)
	var buf bytes.Buffer
	buf.WriteString(journalMagic)
	framed, err := frameRecord(journalRecord{Space: &journalSpace{
		CUs:  j.space.CUCounts,
		Core: j.space.CoreClocksMHz,
		Mem:  j.space.MemClocksMHz,
	}})
	if err != nil {
		return err
	}
	buf.Write(framed)
	if prior != nil {
		for r := range prior.Kernels {
			framed, err := rowRecord(prior, r)
			if err != nil {
				return err
			}
			buf.Write(framed)
		}
	}
	// Atomic replace: a crash mid-migration leaves the old v1 file,
	// which simply migrates again next open.
	tmp, err := os.CreateTemp(filepath.Dir(j.path), filepath.Base(j.path)+".v2*")
	if err != nil {
		return fmt.Errorf("sweep: migrating v1 journal: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: migrating v1 journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: migrating v1 journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: migrating v1 journal: %w", err)
	}
	syncDir(filepath.Dir(j.path))
	// The old handle points at the unlinked v1 file; reopen the v2 one.
	old := j.f
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	tmp.Close()
	if err != nil {
		return fmt.Errorf("sweep: reopening migrated journal: %w", err)
	}
	old.Close()
	j.f = f
	j.w = io.Writer(f)
	j.good = int64(buf.Len())
	if _, err := f.Seek(j.good, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("sweep: seeking migrated journal: %w", err)
	}
	j.prior = prior
	j.salvage = &SalvageReport{
		DroppedBytes:   droppedBytes,
		DroppedRecords: droppedRecords,
		MigratedV1:     true,
		Reason:         "v1 CSV journal migrated to v2",
	}
	return nil
}

// salvageV1CSV reads a v1 CSV journal tolerantly: it stops at the
// first malformed line instead of erroring, then keeps only kernels
// whose rows are complete and all-OK. Returns the salvaged matrix
// (nil if none), bytes of unreadable tail, and the count of dropped
// data lines (torn tail plus lines of incomplete kernels).
func salvageV1CSV(data []byte, space hw.Space) (*Matrix, int64, int) {
	br := bytes.NewReader(data)
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil || len(header) < 7 || header[0] != "kernel" {
		return nil, int64(len(data)), countRecords(data)
	}
	legacy := len(header) == 7
	nCfg := space.Size()
	bounds := boundNames()
	m := &Matrix{Space: space}
	rows := map[string]int{}
	var filled [][]bool
	var rowLines []int
	goodOffset := cr.InputOffset()
	tornLines := 0
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			tornLines = countRecords(data[goodOffset:])
			break
		}
		cell, derr := decodeCSVRecord(rec, line, space, bounds, legacy)
		if derr != nil {
			tornLines = countRecords(data[goodOffset:])
			break
		}
		ri, ok := rows[cell.kernel]
		if !ok {
			ri = len(m.Kernels)
			rows[cell.kernel] = ri
			m.Kernels = append(m.Kernels, cell.kernel)
			m.Throughput = append(m.Throughput, make([]float64, nCfg))
			m.TimeNS = append(m.TimeNS, make([]float64, nCfg))
			m.Bound = append(m.Bound, make([]gcn.Bound, nCfg))
			m.Status = append(m.Status, failedRow(nCfg))
			filled = append(filled, make([]bool, nCfg))
			rowLines = append(rowLines, 0)
		}
		m.Throughput[ri][cell.ci] = cell.tput
		m.TimeNS[ri][cell.ci] = cell.tns
		m.Bound[ri][cell.ci] = cell.bound
		m.Status[ri][cell.ci] = cell.status
		filled[ri][cell.ci] = true
		rowLines[ri]++
		goodOffset = cr.InputOffset()
	}
	droppedBytes := int64(len(data)) - goodOffset
	// Keep only kernels with every cell present and StatusOK; a
	// partial or failed row is recomputed by the resume anyway.
	kept := &Matrix{Space: space}
	droppedLines := tornLines
	for ri := range m.Kernels {
		complete := true
		for c := 0; c < nCfg; c++ {
			if !filled[ri][c] || m.Status[ri][c] != StatusOK {
				complete = false
				break
			}
		}
		if !complete {
			droppedLines += rowLines[ri]
			continue
		}
		kept.Kernels = append(kept.Kernels, m.Kernels[ri])
		kept.Throughput = append(kept.Throughput, m.Throughput[ri])
		kept.TimeNS = append(kept.TimeNS, m.TimeNS[ri])
		kept.Bound = append(kept.Bound, m.Bound[ri])
		kept.Status = append(kept.Status, m.Status[ri])
	}
	if len(kept.Kernels) == 0 {
		kept = nil
	}
	return kept, droppedBytes, droppedLines
}

// rowRecord frames row r of m as a v2 row record.
func rowRecord(m *Matrix, r int) ([]byte, error) {
	nCfg := m.Space.Size()
	bounds := make([]int, nCfg)
	for c := 0; c < nCfg; c++ {
		bounds[c] = int(m.Bound[r][c])
	}
	return frameRecord(journalRecord{
		Kernel: m.Kernels[r],
		Tput:   m.Throughput[r],
		TimeNS: m.TimeNS[r],
		Bound:  bounds,
	})
}

// RowPlanesDigest hashes one row's measurement planes in their
// journal wire form: FNV-64a over the JSON payload of the v2 row
// record those planes would frame as. Because the digest covers
// exactly the bytes a journal append writes (modulo the CRC frame,
// which the CRC already guards), "the digest matches" and "the
// journaled bytes match" are the same statement — which is what lets
// a coordinator attest a row it received over the wire and a merge
// verify the row a worker journaled, without either re-running the
// engine. Honest re-executions of a row are bit-identical (seeded
// noise), so equal digests mean equal rows, and the hash itself rides
// the marshaling the append path already pays.
func RowPlanesDigest(kernelName string, tput, timeNS []float64, bound []int) (string, error) {
	payload, err := json.Marshal(journalRecord{Kernel: kernelName, Tput: tput, TimeNS: timeNS, Bound: bound})
	if err != nil {
		return "", fmt.Errorf("sweep: encoding row for digest: %w", err)
	}
	h := fnv.New64a()
	h.Write(payload)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// RowDigest is RowPlanesDigest over row r of m. The row must be
// complete (all StatusOK) — the only kind of row a journal holds.
func RowDigest(m *Matrix, r int) (string, error) {
	if !m.RowComplete(r) {
		return "", fmt.Errorf("sweep: digest of incomplete row %s", m.Kernels[r])
	}
	nCfg := m.Space.Size()
	bounds := make([]int, nCfg)
	for c := 0; c < nCfg; c++ {
		bounds[c] = int(m.Bound[r][c])
	}
	return RowPlanesDigest(m.Kernels[r], m.Throughput[r], m.TimeNS[r], bounds)
}

// Prior returns the matrix recovered from an existing journal file,
// or nil for a fresh journal. Pass it to Resume. Recovered cells are
// exact: JSON float64 encoding round-trips, so a resumed sweep's
// final matrix is byte-identical to an uninterrupted run's.
func (j *Journal) Prior() *Matrix { return j.prior }

// Salvage reports what recovery discarded when the journal was
// opened, or nil if the file was clean (or new).
func (j *Journal) Salvage() *SalvageReport { return j.salvage }

// AppendRow checkpoints row r of m if — and only if — every cell is
// StatusOK: rows with failed, stalled or quarantined cells are left
// out so the next Resume recomputes them. Safe for concurrent use;
// matches the Options.OnRow signature via a closure. The record is
// fsynced before AppendRow returns, and a failed or torn write is
// rolled back so the file stays clean.
func (j *Journal) AppendRow(m *Matrix, r int) error {
	if !m.RowComplete(r) {
		return nil
	}
	framed, err := rowRecord(m, r)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.writeAt(j.good, framed); err != nil {
		return fmt.Errorf("sweep: journaling %s: %w", m.Kernels[r], err)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ErrJournalIncomplete is returned by VerifyComplete when the journal
// is missing kernels or cells.
var ErrJournalIncomplete = errors.New("sweep: journal incomplete")

// VerifyComplete re-reads the journal from disk and checks that it
// now covers every named kernel with a fully OK row — the post-Resume
// sanity check before the journal is archived.
func (j *Journal) VerifyComplete(kernels []string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	defer j.f.Seek(j.good, io.SeekStart)
	data, err := io.ReadAll(j.f)
	if err != nil {
		return err
	}
	m, good, reason, err := scanJournal(data, j.space)
	if err != nil {
		return err
	}
	if good < int64(len(data)) {
		return fmt.Errorf("%w: %s", ErrJournalIncomplete, reason)
	}
	for _, k := range kernels {
		if m == nil {
			return fmt.Errorf("%w: kernel %s", ErrJournalIncomplete, k)
		}
		r := m.Row(k)
		if r < 0 || !m.RowComplete(r) {
			return fmt.Errorf("%w: kernel %s", ErrJournalIncomplete, k)
		}
	}
	return nil
}
