package kernel

import (
	"math"

	"gpuscale/internal/hw"
)

// Derived bundles every launch-invariant derived quantity of a
// kernel. The per-kernel derivations are individually cheap but sit
// on the sweep's per-cell hot path when recomputed for each of a
// row's 891 configurations; gcn.Prepare calls Derive once per kernel
// and the engines read the bundle instead.
type Derived struct {
	WavesPerWG              int
	TotalWaves              int
	TotalWorkItems          int64
	MemAccessesPerWave      int
	TransactionBytesPerWave int64
	FlopsPerWave            float64
	EffectiveMLP            float64
	OccupancyWavesPerCU     int
	WorkgroupsPerCU         int
}

// Derive computes the launch-invariant bundle. Each field equals the
// value of the same-named method, so cached and direct callers agree
// exactly.
func (k *Kernel) Derive() Derived {
	return Derived{
		WavesPerWG:              k.WavesPerWG(),
		TotalWaves:              k.TotalWaves(),
		TotalWorkItems:          k.TotalWorkItems(),
		MemAccessesPerWave:      k.MemAccessesPerWave(),
		TransactionBytesPerWave: k.TransactionBytesPerWave(),
		FlopsPerWave:            k.FlopsPerWave(),
		EffectiveMLP:            k.EffectiveMLP(),
		OccupancyWavesPerCU:     k.OccupancyWavesPerCU(),
		WorkgroupsPerCU:         k.WorkgroupsPerCU(),
	}
}

// WavesPerWG returns the number of wavefronts one workgroup occupies.
func (k *Kernel) WavesPerWG() int {
	return (k.WGSize + hw.WavefrontSize - 1) / hw.WavefrontSize
}

// TotalWaves returns the number of wavefronts in the whole launch.
func (k *Kernel) TotalWaves() int {
	return k.Workgroups * k.WavesPerWG()
}

// TotalWorkItems returns the number of work-items in the launch.
func (k *Kernel) TotalWorkItems() int64 {
	return int64(k.Workgroups) * int64(k.WGSize)
}

// MemAccessesPerWave returns loads plus stores per wavefront.
func (k *Kernel) MemAccessesPerWave() int {
	return k.Mem.LoadsPerWave + k.Mem.StoresPerWave
}

// BytesPerWave returns the useful global-memory payload one wavefront
// moves, before coalescing waste.
func (k *Kernel) BytesPerWave() int64 {
	return int64(k.MemAccessesPerWave()) * int64(k.Mem.BytesPerLane) * hw.WavefrontSize
}

// TransactionBytesPerWave returns the bytes actually transferred per
// wavefront once coalescing waste is accounted for. An uncoalesced
// access fetches one full cache line per lane; a coalesced one fetches
// only the payload (rounded up to whole lines).
func (k *Kernel) TransactionBytesPerWave() int64 {
	n := k.MemAccessesPerWave()
	if n == 0 {
		return 0
	}
	payloadLines := float64(k.Mem.BytesPerLane*hw.WavefrontSize) / hw.L2LineBytes
	payloadLines = math.Ceil(payloadLines)
	worstLines := float64(hw.WavefrontSize) // one line per lane
	lines := k.Mem.CoalescedFraction*payloadLines + (1-k.Mem.CoalescedFraction)*worstLines
	return int64(float64(n) * lines * hw.L2LineBytes)
}

// FlopsPerWave approximates useful floating-point work per wavefront:
// every VALU instruction on active lanes counts as one FLOP-per-lane
// (FMA-heavy kernels therefore undercount slightly, which is harmless
// for relative scaling).
func (k *Kernel) FlopsPerWave() float64 {
	return float64(k.VALUPerWave) * hw.WavefrontSize * k.SIMDEfficiency
}

// ArithmeticIntensity returns FLOPs per byte of coalesced-adjusted
// DRAM traffic, the roofline x-coordinate. Kernels with no memory
// traffic return +Inf.
func (k *Kernel) ArithmeticIntensity() float64 {
	b := k.TransactionBytesPerWave()
	if b == 0 {
		return math.Inf(1)
	}
	// Temporal reuse means only a fraction of traffic reaches DRAM on
	// a warm cache, but intensity is conventionally defined against
	// total traffic; the simulator applies cache filtering separately.
	return k.FlopsPerWave() / float64(b)
}

// EffectiveMLP returns the wavefront's usable memory-level parallelism
// after serial dependency chains throttle it.
func (k *Kernel) EffectiveMLP() float64 {
	if k.MemAccessesPerWave() == 0 {
		return 0
	}
	mlp := k.Mem.MLP * (1 - k.DepChainFraction)
	if mlp < 1 {
		return 1
	}
	return mlp
}

// OccupancyWavesPerCU returns how many wavefronts of this kernel one
// compute unit can keep resident, limited by wave slots, vector and
// scalar registers, and LDS. The result is always at least the waves
// of one workgroup if a single workgroup fits at all, and 0 if even
// one workgroup cannot fit.
func (k *Kernel) OccupancyWavesPerCU() int {
	wavesPerWG := k.WavesPerWG()

	// Wave-slot limit.
	limit := hw.MaxWavesPerCU

	// VGPR limit: registers are allocated per SIMD; each wave on a
	// SIMD needs VGPRsPerWI * 64 registers.
	vgprsPerWave := k.VGPRsPerWI * hw.WavefrontSize
	if vgprsPerWave > 0 {
		perSIMD := hw.VGPRsPerSIMD / vgprsPerWave
		if v := perSIMD * hw.SIMDsPerCU; v < limit {
			limit = v
		}
	}

	// SGPR limit. SGPRs are banked per SIMD on real GCN; modelling
	// them per CU is a simplification that only matters for
	// SGPR-extreme kernels.
	if k.SGPRsPerWave > 0 {
		if v := hw.SGPRsPerCU / k.SGPRsPerWave; v < limit {
			limit = v
		}
	}

	// LDS limit: whole workgroups must fit.
	wgLimit := math.MaxInt
	if k.LDSPerWG > 0 {
		wgLimit = hw.LDSBytesPerCU / k.LDSPerWG
	}

	// Convert the wave limit into whole workgroups, then apply the LDS
	// workgroup limit.
	wgByWaves := limit / wavesPerWG
	if wgLimit < wgByWaves {
		wgByWaves = wgLimit
	}
	if wgByWaves < 1 {
		return 0
	}
	return wgByWaves * wavesPerWG
}

// WorkgroupsPerCU returns the resident-workgroup capacity of one CU.
func (k *Kernel) WorkgroupsPerCU() int {
	w := k.WavesPerWG()
	if w == 0 {
		return 0
	}
	return k.OccupancyWavesPerCU() / w
}

// ParallelismLimitCUs returns the smallest CU count at which the launch
// can no longer fill every CU with at least one resident workgroup —
// beyond this point adding CUs cannot help. Returns MaxInt-like large
// values only when occupancy is zero.
func (k *Kernel) ParallelismLimitCUs() int {
	if k.WorkgroupsPerCU() == 0 {
		return 0
	}
	return k.Workgroups
}
