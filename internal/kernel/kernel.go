// Package kernel defines the declarative behavioural model of a GPGPU
// kernel: its launch geometry, per-wavefront instruction mix, resource
// usage, and memory-access behaviour. The timing simulator in
// internal/gcn consumes these descriptions; the corpus in
// internal/suites instantiates 267 of them.
//
// A Kernel deliberately records behaviour, not code: the taxonomy in
// the paper depends only on how a kernel's runtime responds to changes
// in compute units, core clock, and memory bandwidth, and those
// responses are fully determined by the quantities captured here.
package kernel

import (
	"errors"
	"fmt"

	"gpuscale/internal/hw"
)

// AccessPattern describes the spatial structure of a kernel's global
// memory accesses, which determines coalescing, cache behaviour, and
// DRAM efficiency.
type AccessPattern int

// Access patterns, ordered roughly from most to least DRAM-friendly.
const (
	// Streaming is unit-stride, fully coalesced access.
	Streaming AccessPattern = iota
	// Tiled is blocked access with high intra-workgroup reuse
	// (GEMM-like kernels that stage tiles through LDS or cache).
	Tiled
	// Strided is regular access with a stride larger than a cache
	// line, wasting part of each fetched line.
	Strided
	// Gather is data-dependent, irregular access with limited
	// locality (graph and sparse kernels).
	Gather
	// PointerChase is serially dependent irregular access (linked
	// structures); latency-bound almost by construction.
	PointerChase
)

var patternNames = [...]string{"streaming", "tiled", "strided", "gather", "pointer-chase"}

// String returns the lower-case pattern name.
func (p AccessPattern) String() string {
	if p < 0 || int(p) >= len(patternNames) {
		return fmt.Sprintf("pattern(%d)", int(p))
	}
	return patternNames[p]
}

// Valid reports whether p is a defined pattern.
func (p AccessPattern) Valid() bool { return p >= Streaming && p <= PointerChase }

// MemBehavior describes a kernel's global-memory traffic per wavefront.
type MemBehavior struct {
	// Pattern is the spatial access structure.
	Pattern AccessPattern
	// LoadsPerWave is the number of vector-load instructions one
	// wavefront issues over its lifetime.
	LoadsPerWave int
	// StoresPerWave is the number of vector-store instructions.
	StoresPerWave int
	// BytesPerLane is the useful payload one lane moves per access
	// (4 for float, 8 for double/float2, ...).
	BytesPerLane int
	// CoalescedFraction is the fraction of accesses that coalesce
	// into the minimal number of cache-line transactions (1 = fully
	// coalesced, 0 = one transaction per lane).
	CoalescedFraction float64
	// WorkingSetPerWG is the bytes of distinct global data one
	// workgroup touches; drives L1/L2 capacity behaviour.
	WorkingSetPerWG int64
	// SharedFraction is the fraction of a workgroup's working set
	// shared with other workgroups (e.g. a matrix row block reused
	// across a tile column). Shared data amplifies L2 reuse.
	SharedFraction float64
	// ReuseFactor is how many times the kernel re-touches each
	// working-set byte after first use (temporal locality).
	ReuseFactor float64
	// MLP is the memory-level parallelism: how many outstanding
	// memory requests one wavefront sustains. 1 means fully serial
	// (pointer chasing), 8+ means deeply pipelined streaming.
	MLP float64
}

// Kernel is the complete behavioural description of one GPGPU kernel.
type Kernel struct {
	// Name identifies the kernel ("program.kernel").
	Name string
	// Program is the host program the kernel belongs to.
	Program string
	// Suite is the benchmark suite the program belongs to.
	Suite string

	// Workgroups is the launch's workgroup count.
	Workgroups int
	// WGSize is work-items per workgroup (multiple of wavefront size
	// in well-formed kernels, but any positive value is accepted).
	WGSize int

	// VGPRsPerWI is vector registers per work-item; with WGSize it
	// bounds occupancy.
	VGPRsPerWI int
	// SGPRsPerWave is scalar registers per wavefront.
	SGPRsPerWave int
	// LDSPerWG is local-data-share bytes per workgroup.
	LDSPerWG int

	// VALUPerWave is vector-ALU instructions one wavefront executes.
	VALUPerWave int
	// SALUPerWave is scalar-ALU instructions per wavefront.
	SALUPerWave int
	// LDSOpsPerWave is LDS load/store instructions per wavefront.
	LDSOpsPerWave int
	// BarriersPerWave is workgroup barrier count per wavefront.
	BarriersPerWave int

	// SIMDEfficiency is the mean fraction of active lanes per VALU
	// instruction (1 = no divergence).
	SIMDEfficiency float64
	// DepChainFraction is the fraction of memory accesses that are
	// serially dependent on a prior access (0 = independent, 1 =
	// pointer chase). It throttles effective MLP.
	DepChainFraction float64

	// Mem is the kernel's global-memory behaviour.
	Mem MemBehavior

	// LaunchOverheadNS is fixed host-side launch latency added to
	// every invocation.
	LaunchOverheadNS float64
	// Iterations is how many times the host launches the kernel in
	// one program run (affects launch-overhead amortisation only).
	Iterations int
}

// Validation errors returned by Kernel.Validate.
var (
	ErrNoName       = errors.New("kernel: empty name")
	ErrBadGeometry  = errors.New("kernel: invalid launch geometry")
	ErrBadResources = errors.New("kernel: invalid resource usage")
	ErrBadMix       = errors.New("kernel: invalid instruction mix")
	ErrBadMem       = errors.New("kernel: invalid memory behaviour")
)

// Validate checks internal consistency of the description.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return ErrNoName
	}
	if k.Workgroups < 1 || k.WGSize < 1 || k.WGSize > 1024 {
		return fmt.Errorf("%w: %d workgroups of %d work-items", ErrBadGeometry, k.Workgroups, k.WGSize)
	}
	if k.VGPRsPerWI < 1 || k.VGPRsPerWI > 256 {
		return fmt.Errorf("%w: %d VGPRs per work-item", ErrBadResources, k.VGPRsPerWI)
	}
	if k.SGPRsPerWave < 0 || k.SGPRsPerWave > 512 {
		return fmt.Errorf("%w: %d SGPRs per wave", ErrBadResources, k.SGPRsPerWave)
	}
	if k.LDSPerWG < 0 || k.LDSPerWG > hw.LDSBytesPerCU {
		return fmt.Errorf("%w: %d LDS bytes per workgroup", ErrBadResources, k.LDSPerWG)
	}
	if k.VALUPerWave < 1 {
		return fmt.Errorf("%w: %d VALU instructions per wave", ErrBadMix, k.VALUPerWave)
	}
	if k.SALUPerWave < 0 || k.LDSOpsPerWave < 0 || k.BarriersPerWave < 0 {
		return fmt.Errorf("%w: negative instruction count", ErrBadMix)
	}
	if k.SIMDEfficiency <= 0 || k.SIMDEfficiency > 1 {
		return fmt.Errorf("%w: SIMD efficiency %g", ErrBadMix, k.SIMDEfficiency)
	}
	if k.DepChainFraction < 0 || k.DepChainFraction > 1 {
		return fmt.Errorf("%w: dependency-chain fraction %g", ErrBadMix, k.DepChainFraction)
	}
	if k.LaunchOverheadNS < 0 {
		return fmt.Errorf("%w: negative launch overhead", ErrBadGeometry)
	}
	if k.Iterations < 1 {
		return fmt.Errorf("%w: %d iterations", ErrBadGeometry, k.Iterations)
	}
	return k.Mem.validate()
}

func (m *MemBehavior) validate() error {
	if !m.Pattern.Valid() {
		return fmt.Errorf("%w: pattern %d", ErrBadMem, int(m.Pattern))
	}
	if m.LoadsPerWave < 0 || m.StoresPerWave < 0 {
		return fmt.Errorf("%w: negative access count", ErrBadMem)
	}
	if m.LoadsPerWave+m.StoresPerWave > 0 {
		if m.BytesPerLane < 1 || m.BytesPerLane > 16 {
			return fmt.Errorf("%w: %d bytes per lane", ErrBadMem, m.BytesPerLane)
		}
		if m.MLP < 1 {
			return fmt.Errorf("%w: MLP %g < 1", ErrBadMem, m.MLP)
		}
	}
	if m.CoalescedFraction < 0 || m.CoalescedFraction > 1 {
		return fmt.Errorf("%w: coalesced fraction %g", ErrBadMem, m.CoalescedFraction)
	}
	if m.SharedFraction < 0 || m.SharedFraction > 1 {
		return fmt.Errorf("%w: shared fraction %g", ErrBadMem, m.SharedFraction)
	}
	if m.WorkingSetPerWG < 0 {
		return fmt.Errorf("%w: negative working set", ErrBadMem)
	}
	if m.ReuseFactor < 0 {
		return fmt.Errorf("%w: negative reuse factor", ErrBadMem)
	}
	return nil
}
