package kernel

import (
	"math"
	"testing"
	"testing/quick"

	"gpuscale/internal/hw"
)

func TestWavesPerWG(t *testing.T) {
	tests := []struct {
		wgSize, want int
	}{
		{1, 1}, {64, 1}, {65, 2}, {128, 2}, {256, 4}, {1024, 16},
	}
	for _, tt := range tests {
		k := New("s", "p", "k").Geometry(10, tt.wgSize).MustBuild()
		if got := k.WavesPerWG(); got != tt.want {
			t.Errorf("WavesPerWG(wgSize=%d) = %d, want %d", tt.wgSize, got, tt.want)
		}
	}
}

func TestTotalWaves(t *testing.T) {
	k := New("s", "p", "k").Geometry(100, 256).MustBuild()
	if got := k.TotalWaves(); got != 400 {
		t.Errorf("TotalWaves() = %d, want 400", got)
	}
	if got := k.TotalWorkItems(); got != 25600 {
		t.Errorf("TotalWorkItems() = %d, want 25600", got)
	}
}

func TestTransactionBytesCoalesced(t *testing.T) {
	// Fully coalesced 4-byte loads: 64 lanes x 4 B = 256 B = 4 lines.
	k := New("s", "p", "k").Access(Streaming, 10, 0, 4).Coalescing(1).MustBuild()
	want := int64(10 * 4 * hw.L2LineBytes)
	if got := k.TransactionBytesPerWave(); got != want {
		t.Errorf("TransactionBytesPerWave() = %d, want %d", got, want)
	}
}

func TestTransactionBytesUncoalesced(t *testing.T) {
	// Fully uncoalesced: one line per lane per access.
	k := New("s", "p", "k").Access(Gather, 10, 0, 4).Coalescing(0).MustBuild()
	want := int64(10 * hw.WavefrontSize * hw.L2LineBytes)
	if got := k.TransactionBytesPerWave(); got != want {
		t.Errorf("TransactionBytesPerWave() = %d, want %d", got, want)
	}
}

func TestTransactionBytesMonotonicInCoalescing(t *testing.T) {
	f := func(frac float64) bool {
		frac = math.Abs(math.Mod(frac, 1))
		lo := New("s", "p", "k").Access(Streaming, 8, 8, 4).Coalescing(frac).MustBuild()
		hi := New("s", "p", "k").Access(Streaming, 8, 8, 4).Coalescing(1).MustBuild()
		return lo.TransactionBytesPerWave() >= hi.TransactionBytesPerWave()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArithmeticIntensity(t *testing.T) {
	k := New("s", "p", "k").
		Compute(1000, 0).
		Access(Streaming, 10, 0, 4).
		Coalescing(1).
		MustBuild()
	flops := 1000.0 * 64
	bytes := float64(10 * 4 * hw.L2LineBytes)
	if got := k.ArithmeticIntensity(); math.Abs(got-flops/bytes) > 1e-9 {
		t.Errorf("ArithmeticIntensity() = %g, want %g", got, flops/bytes)
	}
	pure := New("s", "p", "k").Access(Streaming, 0, 0, 0).MLP(0).MustBuild()
	if got := pure.ArithmeticIntensity(); !math.IsInf(got, 1) {
		t.Errorf("pure-compute intensity = %g, want +Inf", got)
	}
}

func TestEffectiveMLP(t *testing.T) {
	k := New("s", "p", "k").MLP(8).DepChain(0.5).MustBuild()
	if got := k.EffectiveMLP(); got != 4 {
		t.Errorf("EffectiveMLP() = %g, want 4", got)
	}
	chase := New("s", "p", "k").MLP(8).DepChain(1).MustBuild()
	if got := chase.EffectiveMLP(); got != 1 {
		t.Errorf("full dep chain EffectiveMLP() = %g, want clamp to 1", got)
	}
}

func TestOccupancyWaveSlotLimit(t *testing.T) {
	// Tiny resource usage: limited only by the 40 wave slots.
	k := New("s", "p", "k").Geometry(1000, 64).Resources(8, 16, 0).MustBuild()
	if got := k.OccupancyWavesPerCU(); got != hw.MaxWavesPerCU {
		t.Errorf("OccupancyWavesPerCU() = %d, want %d", got, hw.MaxWavesPerCU)
	}
}

func TestOccupancyVGPRLimit(t *testing.T) {
	// 128 VGPRs/WI -> 8192 VGPRs/wave -> 8 waves/SIMD capacity 65536
	// -> 8 per SIMD? 65536/8192 = 8, x4 SIMDs = 32 waves.
	k := New("s", "p", "k").Geometry(1000, 64).Resources(128, 16, 0).MustBuild()
	if got := k.OccupancyWavesPerCU(); got != 32 {
		t.Errorf("OccupancyWavesPerCU() = %d, want 32", got)
	}
}

func TestOccupancyLDSLimit(t *testing.T) {
	// 32 KiB LDS per workgroup -> 2 workgroups per CU; wgSize 256 ->
	// 4 waves/WG -> 8 waves.
	k := New("s", "p", "k").Geometry(1000, 256).Resources(16, 16, 32*1024).MustBuild()
	if got := k.OccupancyWavesPerCU(); got != 8 {
		t.Errorf("OccupancyWavesPerCU() = %d, want 8", got)
	}
	if got := k.WorkgroupsPerCU(); got != 2 {
		t.Errorf("WorkgroupsPerCU() = %d, want 2", got)
	}
}

func TestOccupancyWholeWorkgroups(t *testing.T) {
	// wgSize 1024 -> 16 waves/WG; 40-slot limit -> 2 WGs = 32 waves,
	// never a fractional workgroup.
	k := New("s", "p", "k").Geometry(1000, 1024).Resources(8, 16, 0).MustBuild()
	if got := k.OccupancyWavesPerCU(); got != 32 {
		t.Errorf("OccupancyWavesPerCU() = %d, want 32", got)
	}
}

func TestOccupancyZeroWhenWGTooBig(t *testing.T) {
	// A workgroup needing more LDS than exists can never be resident.
	k := validKernel()
	k.LDSPerWG = hw.LDSBytesPerCU
	k.VGPRsPerWI = 256
	k.WGSize = 1024
	// 256 VGPR x 64 = 16384 per wave; 65536/16384 = 4 waves/SIMD x4 =
	// 16 waves; 16 waves / 16 waves-per-WG = 1 WG; LDS allows 1. Fits.
	if got := k.OccupancyWavesPerCU(); got != 16 {
		t.Errorf("OccupancyWavesPerCU() = %d, want 16", got)
	}
	k.VGPRsPerWI = 255 // 16320/wave -> 4/SIMD -> still 16
	if got := k.OccupancyWavesPerCU(); got != 16 {
		t.Errorf("OccupancyWavesPerCU() = %d, want 16", got)
	}
}

func TestOccupancyPropertyPositiveWhenModest(t *testing.T) {
	f := func(vg uint8, wg uint8) bool {
		vgprs := int(vg)%64 + 8
		wgSize := (int(wg)%4 + 1) * 64
		k := New("s", "p", "k").Geometry(100, wgSize).Resources(vgprs, 32, 0).MustBuild()
		occ := k.OccupancyWavesPerCU()
		return occ >= k.WavesPerWG() && occ <= hw.MaxWavesPerCU && occ%k.WavesPerWG() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesPerWave(t *testing.T) {
	k := New("s", "p", "k").Access(Streaming, 10, 5, 8).MustBuild()
	want := int64(15) * 8 * hw.WavefrontSize
	if got := k.BytesPerWave(); got != want {
		t.Errorf("BytesPerWave() = %d, want %d", got, want)
	}
}

func TestParallelismLimitCUs(t *testing.T) {
	k := New("s", "p", "k").Geometry(16, 256).MustBuild()
	if got := k.ParallelismLimitCUs(); got != 16 {
		t.Errorf("ParallelismLimitCUs() = %d, want 16", got)
	}
	big := New("s", "p", "k").Geometry(100, 1024).MustBuild()
	big.SGPRsPerWave = 512 // cannot fit a 16-wave workgroup
	if got := big.ParallelismLimitCUs(); got != 0 {
		t.Errorf("unfittable kernel ParallelismLimitCUs() = %d, want 0", got)
	}
}

func TestDeriveMatchesMethods(t *testing.T) {
	kernels := []*Kernel{
		New("s", "p", "plain").MustBuild(),
		New("s", "p", "odd").Geometry(100, 65).Compute(3000, 50).
			Access(Gather, 40, 10, 8).Coalescing(0.3).MLP(4).DepChain(0.5).MustBuild(),
		New("s", "p", "lds").Resources(64, 96, 32*1024).MustBuild(),
		New("s", "p", "pure").Access(Streaming, 0, 0, 4).MustBuild(),
	}
	for _, k := range kernels {
		d := k.Derive()
		if d.WavesPerWG != k.WavesPerWG() || d.TotalWaves != k.TotalWaves() ||
			d.TotalWorkItems != k.TotalWorkItems() ||
			d.MemAccessesPerWave != k.MemAccessesPerWave() ||
			d.TransactionBytesPerWave != k.TransactionBytesPerWave() ||
			d.FlopsPerWave != k.FlopsPerWave() || d.EffectiveMLP != k.EffectiveMLP() ||
			d.OccupancyWavesPerCU != k.OccupancyWavesPerCU() ||
			d.WorkgroupsPerCU != k.WorkgroupsPerCU() {
			t.Errorf("%s: Derive() = %+v diverges from the per-method values", k.Name, d)
		}
	}
}
