package kernel

import (
	"encoding/json"
	"fmt"
	"io"
)

// MarshalJSON encodes the pattern as its string name.
func (p AccessPattern) MarshalJSON() ([]byte, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("kernel: cannot marshal invalid pattern %d", int(p))
	}
	return json.Marshal(p.String())
}

// UnmarshalJSON decodes a pattern from its string name.
func (p *AccessPattern) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, name := range patternNames {
		if name == s {
			*p = AccessPattern(i)
			return nil
		}
	}
	return fmt.Errorf("kernel: unknown access pattern %q", s)
}

// WriteAll writes a slice of kernels as indented JSON.
func WriteAll(w io.Writer, ks []*Kernel) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ks)
}

// ReadAll reads a slice of kernels from JSON and validates each one.
func ReadAll(r io.Reader) ([]*Kernel, error) {
	var ks []*Kernel
	if err := json.NewDecoder(r).Decode(&ks); err != nil {
		return nil, fmt.Errorf("kernel: decoding corpus: %w", err)
	}
	for i, k := range ks {
		if k == nil {
			return nil, fmt.Errorf("kernel: null kernel at index %d", i)
		}
		if err := k.Validate(); err != nil {
			return nil, fmt.Errorf("kernel: index %d: %w", i, err)
		}
	}
	return ks, nil
}
