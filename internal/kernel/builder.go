package kernel

import "fmt"

// Builder assembles a Kernel with sane defaults so corpus code and
// tests only state what is interesting. The zero Builder is not useful;
// start with New.
type Builder struct {
	k Kernel
}

// New starts a builder for a kernel with the given identity and
// defaults: 256-item workgroups, 1024 workgroups, 32 VGPRs, a modest
// streaming memory mix, no divergence, one iteration, and 5 us launch
// overhead.
func New(suite, program, name string) *Builder {
	return &Builder{k: Kernel{
		Name:             program + "." + name,
		Program:          program,
		Suite:            suite,
		Workgroups:       1024,
		WGSize:           256,
		VGPRsPerWI:       32,
		SGPRsPerWave:     48,
		VALUPerWave:      2000,
		SALUPerWave:      200,
		SIMDEfficiency:   1,
		LaunchOverheadNS: 5000,
		Iterations:       1,
		Mem: MemBehavior{
			Pattern:           Streaming,
			LoadsPerWave:      64,
			StoresPerWave:     16,
			BytesPerLane:      4,
			CoalescedFraction: 1,
			WorkingSetPerWG:   64 * 1024,
			ReuseFactor:       1,
			MLP:               8,
		},
	}}
}

// Geometry sets the launch geometry.
func (b *Builder) Geometry(workgroups, wgSize int) *Builder {
	b.k.Workgroups, b.k.WGSize = workgroups, wgSize
	return b
}

// Resources sets per-work-item VGPRs, per-wave SGPRs, and per-workgroup
// LDS bytes.
func (b *Builder) Resources(vgprs, sgprs, ldsBytes int) *Builder {
	b.k.VGPRsPerWI, b.k.SGPRsPerWave, b.k.LDSPerWG = vgprs, sgprs, ldsBytes
	return b
}

// Compute sets the per-wave VALU and SALU instruction counts.
func (b *Builder) Compute(valu, salu int) *Builder {
	b.k.VALUPerWave, b.k.SALUPerWave = valu, salu
	return b
}

// LDSOps sets per-wave LDS operations and barriers.
func (b *Builder) LDSOps(ops, barriers int) *Builder {
	b.k.LDSOpsPerWave, b.k.BarriersPerWave = ops, barriers
	return b
}

// Divergence sets SIMD efficiency (1 = none).
func (b *Builder) Divergence(simdEfficiency float64) *Builder {
	b.k.SIMDEfficiency = simdEfficiency
	return b
}

// DepChain sets the serial-dependency fraction of memory accesses.
func (b *Builder) DepChain(fraction float64) *Builder {
	b.k.DepChainFraction = fraction
	return b
}

// Memory replaces the whole memory-behaviour block.
func (b *Builder) Memory(m MemBehavior) *Builder {
	b.k.Mem = m
	return b
}

// Access sets the access pattern, per-wave load/store counts and payload
// width, keeping the other memory fields.
func (b *Builder) Access(p AccessPattern, loads, stores, bytesPerLane int) *Builder {
	b.k.Mem.Pattern = p
	b.k.Mem.LoadsPerWave = loads
	b.k.Mem.StoresPerWave = stores
	b.k.Mem.BytesPerLane = bytesPerLane
	return b
}

// Locality sets working set per workgroup, shared fraction, and reuse.
func (b *Builder) Locality(workingSetPerWG int64, sharedFraction, reuse float64) *Builder {
	b.k.Mem.WorkingSetPerWG = workingSetPerWG
	b.k.Mem.SharedFraction = sharedFraction
	b.k.Mem.ReuseFactor = reuse
	return b
}

// Coalescing sets the coalesced fraction.
func (b *Builder) Coalescing(fraction float64) *Builder {
	b.k.Mem.CoalescedFraction = fraction
	return b
}

// MLP sets memory-level parallelism per wavefront.
func (b *Builder) MLP(mlp float64) *Builder {
	b.k.Mem.MLP = mlp
	return b
}

// Launch sets per-invocation overhead and host iteration count.
func (b *Builder) Launch(overheadNS float64, iterations int) *Builder {
	b.k.LaunchOverheadNS, b.k.Iterations = overheadNS, iterations
	return b
}

// Build validates and returns the kernel.
func (b *Builder) Build() (*Kernel, error) {
	k := b.k // copy so the builder can be reused
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("building %s: %w", k.Name, err)
	}
	return &k, nil
}

// MustBuild is Build for statically-known-good descriptions; it panics
// on validation failure.
func (b *Builder) MustBuild() *Kernel {
	k, err := b.Build()
	if err != nil {
		panic(err)
	}
	return k
}
