package kernel

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	ks := []*Kernel{
		New("s", "p", "a").MustBuild(),
		New("s", "p", "b").Access(PointerChase, 200, 0, 8).Coalescing(0.1).MustBuild(),
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, ks); err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !reflect.DeepEqual(got, ks) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got[1], ks[1])
	}
}

func TestJSONPatternNames(t *testing.T) {
	k := New("s", "p", "a").Access(Gather, 1, 1, 4).MustBuild()
	data, err := json.Marshal(k)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"gather"`) {
		t.Errorf("marshalled kernel missing pattern name: %s", data)
	}
}

func TestJSONBadPattern(t *testing.T) {
	var p AccessPattern
	if err := p.UnmarshalJSON([]byte(`"bogus"`)); err == nil {
		t.Error("UnmarshalJSON accepted unknown pattern")
	}
	bad := AccessPattern(99)
	if _, err := bad.MarshalJSON(); err == nil {
		t.Error("MarshalJSON accepted invalid pattern")
	}
}

func TestReadAllRejectsInvalid(t *testing.T) {
	if _, err := ReadAll(strings.NewReader(`[{"Name":""}]`)); err == nil {
		t.Error("ReadAll accepted invalid kernel")
	}
	if _, err := ReadAll(strings.NewReader(`[null]`)); err == nil {
		t.Error("ReadAll accepted null kernel")
	}
	if _, err := ReadAll(strings.NewReader(`{`)); err == nil {
		t.Error("ReadAll accepted truncated JSON")
	}
}
