package kernel

import (
	"errors"
	"strings"
	"testing"
)

func validKernel() *Kernel {
	return New("suite", "prog", "k").MustBuild()
}

func TestBuilderDefaultsValid(t *testing.T) {
	k, err := New("s", "p", "k").Build()
	if err != nil {
		t.Fatalf("default builder invalid: %v", err)
	}
	if k.Name != "p.k" {
		t.Errorf("Name = %q, want p.k", k.Name)
	}
	if k.Suite != "s" || k.Program != "p" {
		t.Errorf("identity = %q/%q", k.Suite, k.Program)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Kernel)
		want   error
	}{
		{"empty name", func(k *Kernel) { k.Name = "" }, ErrNoName},
		{"zero workgroups", func(k *Kernel) { k.Workgroups = 0 }, ErrBadGeometry},
		{"huge wg size", func(k *Kernel) { k.WGSize = 4096 }, ErrBadGeometry},
		{"zero wg size", func(k *Kernel) { k.WGSize = 0 }, ErrBadGeometry},
		{"zero vgprs", func(k *Kernel) { k.VGPRsPerWI = 0 }, ErrBadResources},
		{"too many vgprs", func(k *Kernel) { k.VGPRsPerWI = 500 }, ErrBadResources},
		{"negative sgprs", func(k *Kernel) { k.SGPRsPerWave = -1 }, ErrBadResources},
		{"lds over capacity", func(k *Kernel) { k.LDSPerWG = 1 << 20 }, ErrBadResources},
		{"zero valu", func(k *Kernel) { k.VALUPerWave = 0 }, ErrBadMix},
		{"negative salu", func(k *Kernel) { k.SALUPerWave = -1 }, ErrBadMix},
		{"simd eff zero", func(k *Kernel) { k.SIMDEfficiency = 0 }, ErrBadMix},
		{"simd eff over one", func(k *Kernel) { k.SIMDEfficiency = 1.5 }, ErrBadMix},
		{"dep chain negative", func(k *Kernel) { k.DepChainFraction = -0.1 }, ErrBadMix},
		{"negative overhead", func(k *Kernel) { k.LaunchOverheadNS = -1 }, ErrBadGeometry},
		{"zero iterations", func(k *Kernel) { k.Iterations = 0 }, ErrBadGeometry},
		{"bad pattern", func(k *Kernel) { k.Mem.Pattern = AccessPattern(99) }, ErrBadMem},
		{"negative loads", func(k *Kernel) { k.Mem.LoadsPerWave = -1 }, ErrBadMem},
		{"bad payload", func(k *Kernel) { k.Mem.BytesPerLane = 0 }, ErrBadMem},
		{"mlp under one", func(k *Kernel) { k.Mem.MLP = 0.5 }, ErrBadMem},
		{"coalesce over one", func(k *Kernel) { k.Mem.CoalescedFraction = 2 }, ErrBadMem},
		{"shared negative", func(k *Kernel) { k.Mem.SharedFraction = -1 }, ErrBadMem},
		{"negative ws", func(k *Kernel) { k.Mem.WorkingSetPerWG = -1 }, ErrBadMem},
		{"negative reuse", func(k *Kernel) { k.Mem.ReuseFactor = -1 }, ErrBadMem},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			k := validKernel()
			tt.mutate(k)
			if err := k.Validate(); !errors.Is(err, tt.want) {
				t.Fatalf("Validate() = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestPureComputeKernelValid(t *testing.T) {
	// A kernel with no memory traffic must not trip the payload/MLP
	// checks that only apply when accesses exist.
	k := New("s", "p", "k").
		Access(Streaming, 0, 0, 0).
		MLP(0).
		MustBuild()
	if k.MemAccessesPerWave() != 0 {
		t.Fatal("expected zero accesses")
	}
	if got := k.EffectiveMLP(); got != 0 {
		t.Errorf("EffectiveMLP() = %g, want 0 for pure compute", got)
	}
}

func TestAccessPatternString(t *testing.T) {
	for p := Streaming; p <= PointerChase; p++ {
		s := p.String()
		if s == "" || strings.HasPrefix(s, "pattern(") {
			t.Errorf("pattern %d has no name", int(p))
		}
	}
	if got := AccessPattern(42).String(); !strings.HasPrefix(got, "pattern(") {
		t.Errorf("invalid pattern String() = %q", got)
	}
}

func TestBuilderReuseDoesNotAlias(t *testing.T) {
	b := New("s", "p", "k")
	k1 := b.MustBuild()
	b.Geometry(8, 64)
	k2 := b.MustBuild()
	if k1.Workgroups == k2.Workgroups {
		t.Fatal("builder mutation leaked into previously built kernel")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild on invalid kernel did not panic")
		}
	}()
	New("s", "p", "k").Geometry(0, 0).MustBuild()
}

func TestBuilderSettersRoundTrip(t *testing.T) {
	m := MemBehavior{
		Pattern: Strided, LoadsPerWave: 11, StoresPerWave: 3, BytesPerLane: 8,
		CoalescedFraction: 0.7, WorkingSetPerWG: 12345, SharedFraction: 0.2,
		ReuseFactor: 1.5, MLP: 3,
	}
	k := New("s", "p", "k").
		LDSOps(77, 4).
		Divergence(0.5).
		Memory(m).
		Locality(999, 0.1, 2).
		Launch(1234, 7).
		MustBuild()
	if k.LDSOpsPerWave != 77 || k.BarriersPerWave != 4 {
		t.Errorf("LDSOps not applied: %d/%d", k.LDSOpsPerWave, k.BarriersPerWave)
	}
	if k.SIMDEfficiency != 0.5 {
		t.Errorf("Divergence not applied: %g", k.SIMDEfficiency)
	}
	// Locality was applied after Memory, overriding its locality fields.
	if k.Mem.Pattern != Strided || k.Mem.LoadsPerWave != 11 {
		t.Errorf("Memory not applied: %+v", k.Mem)
	}
	if k.Mem.WorkingSetPerWG != 999 || k.Mem.SharedFraction != 0.1 || k.Mem.ReuseFactor != 2 {
		t.Errorf("Locality not applied: %+v", k.Mem)
	}
	if k.LaunchOverheadNS != 1234 || k.Iterations != 7 {
		t.Errorf("Launch not applied: %g/%d", k.LaunchOverheadNS, k.Iterations)
	}
}
