package hw

// Product is a named point in the configuration space standing in for
// a real product tier. The paper's opening observation — "GPUs range
// from small, embedded designs to large, high-powered discrete cards"
// — is modelled as four tiers of the same architecture, which is also
// how the vendor actually productised GCN.
type Product struct {
	// Name is the tier label.
	Name string
	// Config is the tier's hardware configuration.
	Config Config
}

// Products returns the modelled product ladder, smallest first:
// an embedded APU-class part, a mobile part, a mainstream desktop
// part, and the flagship workstation part.
func Products() []Product {
	return []Product{
		{Name: "embedded", Config: Config{CUs: 4, CoreClockMHz: 400, MemClockMHz: 287.5}},
		{Name: "mobile", Config: Config{CUs: 12, CoreClockMHz: 600, MemClockMHz: 562.5}},
		{Name: "mainstream", Config: Config{CUs: 28, CoreClockMHz: 900, MemClockMHz: 975}},
		{Name: "flagship", Config: Config{CUs: 44, CoreClockMHz: 1000, MemClockMHz: 1250}},
	}
}
