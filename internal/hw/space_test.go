package hw

import (
	"math"
	"testing"
)

func TestStudySpaceMatchesAbstract(t *testing.T) {
	s := StudySpace()
	if got := s.Size(); got != 891 {
		t.Fatalf("Size() = %d, want 891 (the paper's configuration count)", got)
	}
	if got := len(s.CUCounts); got != 11 {
		t.Errorf("len(CUCounts) = %d, want 11", got)
	}
	if got := s.CURange(); got != 11 {
		t.Errorf("CURange() = %g, want 11 (the paper's 11x CU span)", got)
	}
	if got := s.CoreClockRange(); got != 5 {
		t.Errorf("CoreClockRange() = %g, want 5 (the paper's 5x frequency span)", got)
	}
	if got := s.MemClockRange(); math.Abs(got-8.333) > 0.01 {
		t.Errorf("MemClockRange() = %g, want ~8.33 (the paper's 8.3x bandwidth span)", got)
	}
}

func TestStudySpaceConfigsAllValid(t *testing.T) {
	for _, c := range StudySpace().Configs() {
		if err := c.Validate(); err != nil {
			t.Fatalf("config %v invalid: %v", c, err)
		}
	}
}

func TestStudySpaceAxesAscendingAndUnique(t *testing.T) {
	s := StudySpace()
	for i := 1; i < len(s.CUCounts); i++ {
		if s.CUCounts[i] <= s.CUCounts[i-1] {
			t.Fatalf("CUCounts not strictly ascending at %d: %v", i, s.CUCounts)
		}
	}
	for i := 1; i < len(s.CoreClocksMHz); i++ {
		if s.CoreClocksMHz[i] <= s.CoreClocksMHz[i-1] {
			t.Fatalf("CoreClocksMHz not strictly ascending at %d: %v", i, s.CoreClocksMHz)
		}
	}
	for i := 1; i < len(s.MemClocksMHz); i++ {
		if s.MemClocksMHz[i] <= s.MemClocksMHz[i-1] {
			t.Fatalf("MemClocksMHz not strictly ascending at %d: %v", i, s.MemClocksMHz)
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	s := StudySpace()
	for i, c := range s.Configs() {
		if got := s.Index(c); got != i {
			t.Fatalf("Index(%v) = %d, want %d", c, got, i)
		}
	}
}

func TestIndexMiss(t *testing.T) {
	s := StudySpace()
	if got := s.Index(Config{CUs: 5, CoreClockMHz: 200, MemClockMHz: 150}); got != -1 {
		t.Errorf("Index(off-grid CU) = %d, want -1", got)
	}
	if got := s.Index(Config{CUs: 4, CoreClockMHz: 201, MemClockMHz: 150}); got != -1 {
		t.Errorf("Index(off-grid clock) = %d, want -1", got)
	}
}

func TestAtCorners(t *testing.T) {
	s := StudySpace()
	if got := s.Min(); got != (Config{CUs: 4, CoreClockMHz: 200, MemClockMHz: 150}) {
		t.Errorf("Min() = %v", got)
	}
	if got := s.Max(); got != (Config{CUs: 44, CoreClockMHz: 1000, MemClockMHz: 1250}) {
		t.Errorf("Max() = %v", got)
	}
	if got, want := s.Max(), Reference(); got != want {
		t.Errorf("Max() = %v, want Reference() = %v", got, want)
	}
}

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(nil, []float64{500}, []float64{500}); err == nil {
		t.Error("NewSpace(empty cus) succeeded, want error")
	}
	if _, err := NewSpace([]int{100}, []float64{500}, []float64{500}); err == nil {
		t.Error("NewSpace(invalid cu) succeeded, want error")
	}
	s, err := NewSpace([]int{4, 8}, []float64{200, 400}, []float64{300})
	if err != nil {
		t.Fatalf("NewSpace() error: %v", err)
	}
	if got := s.Size(); got != 4 {
		t.Errorf("Size() = %d, want 4", got)
	}
}

func TestNewSpaceCopiesInput(t *testing.T) {
	cus := []int{4, 8}
	s, err := NewSpace(cus, []float64{200}, []float64{300})
	if err != nil {
		t.Fatal(err)
	}
	cus[0] = 40
	if s.CUCounts[0] != 4 {
		t.Error("NewSpace aliased caller slice")
	}
}

func TestProductsValidAndOrdered(t *testing.T) {
	ps := Products()
	if len(ps) < 3 {
		t.Fatalf("products = %d, want a ladder", len(ps))
	}
	space := StudySpace()
	prev := 0.0
	for _, p := range ps {
		if err := p.Config.Validate(); err != nil {
			t.Errorf("product %s invalid: %v", p.Name, err)
		}
		if space.Index(p.Config) < 0 {
			t.Errorf("product %s (%v) not on the study grid", p.Name, p.Config)
		}
		if f := p.Config.PeakGFLOPS(); f <= prev {
			t.Errorf("product ladder not ascending at %s", p.Name)
		} else {
			prev = f
		}
	}
	if ps[len(ps)-1].Config != Reference() {
		t.Errorf("flagship %v != Reference()", ps[len(ps)-1].Config)
	}
}
