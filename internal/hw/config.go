// Package hw models the hardware configuration space of a GCN-class GPU
// whose compute-unit count, core clock, and memory clock can be varied
// independently, mirroring the 891-configuration grid studied in
// "A Taxonomy of GPGPU Performance Scaling" (IISWC 2015).
//
// A Config is a pure value: it carries the three knobs plus the fixed
// microarchitectural constants (lane count, cache geometry, bus width)
// from which all derived peaks (GFLOP/s, GB/s) are computed.
package hw

import (
	"errors"
	"fmt"
)

// Microarchitectural constants of the modelled GCN-class GPU. These
// follow the AMD "Hawaii" (FirePro W9100) part the paper's multipliers
// are consistent with: 64 lanes per CU, 2 FLOP per lane-cycle (FMA),
// a 512-bit GDDR5 interface at 4x data rate, and a fixed 1 MiB L2 that
// does not shrink when CUs are disabled.
const (
	// LanesPerCU is the number of SIMD lanes in one compute unit.
	LanesPerCU = 64
	// SIMDsPerCU is the number of SIMD units inside one compute unit.
	SIMDsPerCU = 4
	// WavefrontSize is the number of work-items per wavefront.
	WavefrontSize = 64
	// MaxWavesPerSIMD is the wave-slot capacity of one SIMD unit.
	MaxWavesPerSIMD = 10
	// MaxWavesPerCU is the wave-slot capacity of one compute unit.
	MaxWavesPerCU = SIMDsPerCU * MaxWavesPerSIMD
	// FlopsPerLaneCycle counts an FMA as two floating-point operations.
	FlopsPerLaneCycle = 2
	// VGPRsPerSIMD is the vector-register-file capacity of one SIMD.
	VGPRsPerSIMD = 65536
	// SGPRsPerCU is the scalar-register-file capacity of one CU.
	SGPRsPerCU = 3200
	// LDSBytesPerCU is the local-data-share capacity of one CU.
	LDSBytesPerCU = 64 * 1024
	// L1BytesPerCU is the per-CU vector L1 data-cache capacity.
	L1BytesPerCU = 16 * 1024
	// L1LineBytes is the L1 cache-line size.
	L1LineBytes = 64
	// L1Ways is the L1 set associativity.
	L1Ways = 4
	// L2Bytes is the (fixed) shared L2 capacity.
	L2Bytes = 1024 * 1024
	// L2LineBytes is the L2 cache-line size.
	L2LineBytes = 64
	// L2Ways is the L2 set associativity.
	L2Ways = 16
	// MemBusBits is the width of the GDDR5 memory interface.
	MemBusBits = 512
	// MemDataRate is the GDDR5 transfers-per-clock multiplier.
	MemDataRate = 4
	// MaxCUs is the largest compute-unit count in the study.
	MaxCUs = 44
	// MinCUs is the smallest compute-unit count in the study.
	MinCUs = 4
)

// Config is one hardware configuration: a point in the
// (compute units, core clock, memory clock) space.
type Config struct {
	// CUs is the number of enabled compute units.
	CUs int
	// CoreClockMHz is the shader-engine clock in MHz.
	CoreClockMHz float64
	// MemClockMHz is the memory clock in MHz.
	MemClockMHz float64
	// L2Override, when non-zero, replaces the fixed L2Bytes capacity —
	// a what-if knob (the study grid always leaves it zero; disabling
	// CUs on the real part does not shrink the L2).
	L2Override int
}

// Validation errors returned by Config.Validate.
var (
	ErrBadCUs       = errors.New("hw: compute-unit count out of range")
	ErrBadCoreClock = errors.New("hw: core clock out of range")
	ErrBadMemClock  = errors.New("hw: memory clock out of range")
)

// Per-axis predicates of Validate, shared with Space.AxesValid so the
// grid fast path and the per-config check can never drift. Each is the
// exact negation of Validate's original rejection condition (note the
// !(out-of-range) form: a NaN clock compares false on both sides and
// so passes, as it always has).
func validCUs(n int) bool         { return !(n < 1 || n > MaxCUs) }
func validCoreMHz(f float64) bool { return !(f < 100 || f > 1200) }
func validMemMHz(f float64) bool  { return !(f < 100 || f > 1500) }

// Validate reports whether the configuration lies inside the supported
// envelope of the modelled part.
func (c Config) Validate() error {
	if !validCUs(c.CUs) {
		return fmt.Errorf("%w: %d (want 1..%d)", ErrBadCUs, c.CUs, MaxCUs)
	}
	if !validCoreMHz(c.CoreClockMHz) {
		return fmt.Errorf("%w: %g MHz (want 100..1200)", ErrBadCoreClock, c.CoreClockMHz)
	}
	if !validMemMHz(c.MemClockMHz) {
		return fmt.Errorf("%w: %g MHz (want 100..1500)", ErrBadMemClock, c.MemClockMHz)
	}
	if c.L2Override != 0 && (c.L2Override < 64*1024 || c.L2Override > 64*1024*1024) {
		return fmt.Errorf("hw: L2 override %d outside 64KiB..64MiB", c.L2Override)
	}
	return nil
}

// L2CapacityBytes returns the effective shared-L2 capacity: the fixed
// part capacity unless a what-if override is set.
func (c Config) L2CapacityBytes() int {
	if c.L2Override != 0 {
		return c.L2Override
	}
	return L2Bytes
}

// PeakGFLOPS returns the peak single-precision throughput of the
// configuration in GFLOP/s.
func (c Config) PeakGFLOPS() float64 {
	return float64(c.CUs) * LanesPerCU * FlopsPerLaneCycle * c.CoreClockMHz / 1000
}

// PeakBandwidthGBs returns the peak DRAM bandwidth in GB/s:
// memclk(MHz) x data rate x bus bytes / 1000.
func (c Config) PeakBandwidthGBs() float64 {
	return c.MemClockMHz * MemDataRate * (MemBusBits / 8) / 1000
}

// CoreCycleNS returns the duration of one core clock cycle in
// nanoseconds.
func (c Config) CoreCycleNS() float64 {
	return 1000 / c.CoreClockMHz
}

// MachineBalance returns the peak FLOP-per-byte ratio of the
// configuration; kernels whose arithmetic intensity exceeds it are
// compute-bound on a pure roofline view.
func (c Config) MachineBalance() float64 {
	return c.PeakGFLOPS() / c.PeakBandwidthGBs()
}

// String renders the configuration as "NNcu@MMMmhz/memKKKmhz".
func (c Config) String() string {
	return fmt.Sprintf("%dcu@%gmhz/mem%gmhz", c.CUs, c.CoreClockMHz, c.MemClockMHz)
}

// Reference returns the paper's flagship configuration: all 44 CUs at
// the top core and memory clocks of the sweep grid.
func Reference() Config {
	return Config{CUs: MaxCUs, CoreClockMHz: 1000, MemClockMHz: 1250}
}

// Minimum returns the weakest configuration of the sweep grid.
func Minimum() Config {
	return Config{CUs: MinCUs, CoreClockMHz: 200, MemClockMHz: 150}
}
