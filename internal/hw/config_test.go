package hw

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestReferencePeaks(t *testing.T) {
	ref := Reference()
	// 44 CUs x 64 lanes x 2 flops x 1.0 GHz = 5632 GFLOP/s.
	if got := ref.PeakGFLOPS(); !almostEqual(got, 5632, 1e-9) {
		t.Errorf("PeakGFLOPS() = %g, want 5632", got)
	}
	// 1250 MHz x 4 x 64 B = 320 GB/s (FirePro W9100 datasheet value).
	if got := ref.PeakBandwidthGBs(); !almostEqual(got, 320, 1e-9) {
		t.Errorf("PeakBandwidthGBs() = %g, want 320", got)
	}
}

func TestMinimumPeaks(t *testing.T) {
	mn := Minimum()
	if got := mn.PeakGFLOPS(); !almostEqual(got, 4*64*2*0.2, 1e-9) {
		t.Errorf("PeakGFLOPS() = %g, want %g", got, 4*64*2*0.2)
	}
	if got := mn.PeakBandwidthGBs(); !almostEqual(got, 38.4, 1e-9) {
		t.Errorf("PeakBandwidthGBs() = %g, want 38.4", got)
	}
}

func TestCoreCycleNS(t *testing.T) {
	c := Config{CUs: 4, CoreClockMHz: 500, MemClockMHz: 500}
	if got := c.CoreCycleNS(); !almostEqual(got, 2, 1e-12) {
		t.Errorf("CoreCycleNS() = %g, want 2", got)
	}
}

func TestMachineBalancePositive(t *testing.T) {
	for _, c := range StudySpace().Configs() {
		if mb := c.MachineBalance(); mb <= 0 || math.IsNaN(mb) {
			t.Fatalf("MachineBalance(%v) = %g", c, mb)
		}
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		c    Config
		want error
	}{
		{"reference ok", Reference(), nil},
		{"minimum ok", Minimum(), nil},
		{"zero CUs", Config{CUs: 0, CoreClockMHz: 500, MemClockMHz: 500}, ErrBadCUs},
		{"too many CUs", Config{CUs: 64, CoreClockMHz: 500, MemClockMHz: 500}, ErrBadCUs},
		{"core too slow", Config{CUs: 4, CoreClockMHz: 50, MemClockMHz: 500}, ErrBadCoreClock},
		{"core too fast", Config{CUs: 4, CoreClockMHz: 2000, MemClockMHz: 500}, ErrBadCoreClock},
		{"mem too slow", Config{CUs: 4, CoreClockMHz: 500, MemClockMHz: 10}, ErrBadMemClock},
		{"mem too fast", Config{CUs: 4, CoreClockMHz: 500, MemClockMHz: 9000}, ErrBadMemClock},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.c.Validate()
			if tt.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tt.want) {
				t.Fatalf("Validate() = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestStringFormat(t *testing.T) {
	c := Config{CUs: 8, CoreClockMHz: 300, MemClockMHz: 150}
	got := c.String()
	if !strings.Contains(got, "8cu") || !strings.Contains(got, "300") || !strings.Contains(got, "150") {
		t.Errorf("String() = %q, want all three knobs present", got)
	}
}

func TestPeaksScaleLinearlyWithKnobs(t *testing.T) {
	// Property: doubling the CU count doubles peak FLOPs and leaves
	// bandwidth unchanged; doubling the memory clock doubles bandwidth
	// and leaves peak FLOPs unchanged.
	f := func(cu8 uint8, core, mem uint16) bool {
		cu := int(cu8)%20 + 1
		fc := float64(core%900) + 100
		fm := float64(mem%1300) + 100
		c := Config{CUs: cu, CoreClockMHz: fc, MemClockMHz: fm}
		d := Config{CUs: 2 * cu, CoreClockMHz: fc, MemClockMHz: fm}
		m := Config{CUs: cu, CoreClockMHz: fc, MemClockMHz: 2 * fm}
		return almostEqual(d.PeakGFLOPS(), 2*c.PeakGFLOPS(), 1e-6) &&
			almostEqual(d.PeakBandwidthGBs(), c.PeakBandwidthGBs(), 1e-9) &&
			almostEqual(m.PeakBandwidthGBs(), 2*c.PeakBandwidthGBs(), 1e-6) &&
			almostEqual(m.PeakGFLOPS(), c.PeakGFLOPS(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
