package hw

import (
	"fmt"
	"slices"
)

// Space is a rectangular sweep grid over the three hardware knobs.
// The zero value is empty; use StudySpace for the paper's 891-point
// grid or NewSpace to build a custom one.
type Space struct {
	// CUCounts are the compute-unit settings, ascending.
	CUCounts []int
	// CoreClocksMHz are the core-clock settings, ascending.
	CoreClocksMHz []float64
	// MemClocksMHz are the memory-clock settings, ascending.
	MemClocksMHz []float64
}

// StudySpace returns the reconstruction of the paper's configuration
// grid: 11 CU counts x 9 core clocks x 9 memory clocks = 891
// configurations, spanning an 11x CU range (4..44), a 5x core-clock
// range (200..1000 MHz) and an 8.33x memory-clock range (150..1250 MHz).
func StudySpace() Space {
	s := Space{
		CUCounts:      make([]int, 0, 11),
		CoreClocksMHz: make([]float64, 0, 9),
		MemClocksMHz:  make([]float64, 0, 9),
	}
	for cu := MinCUs; cu <= MaxCUs; cu += 4 {
		s.CUCounts = append(s.CUCounts, cu)
	}
	for f := 200.0; f <= 1000; f += 100 {
		s.CoreClocksMHz = append(s.CoreClocksMHz, f)
	}
	for i := 0; i < 9; i++ {
		s.MemClocksMHz = append(s.MemClocksMHz, 150+float64(i)*137.5)
	}
	return s
}

// NewSpace builds a custom sweep grid. It copies its arguments and
// returns an error if any axis is empty or any configuration in the
// grid fails validation.
func NewSpace(cus []int, coreMHz, memMHz []float64) (Space, error) {
	if len(cus) == 0 || len(coreMHz) == 0 || len(memMHz) == 0 {
		return Space{}, fmt.Errorf("hw: empty sweep axis (cus=%d core=%d mem=%d)",
			len(cus), len(coreMHz), len(memMHz))
	}
	s := Space{
		CUCounts:      append([]int(nil), cus...),
		CoreClocksMHz: append([]float64(nil), coreMHz...),
		MemClocksMHz:  append([]float64(nil), memMHz...),
	}
	for _, c := range s.Configs() {
		if err := c.Validate(); err != nil {
			return Space{}, err
		}
	}
	return s, nil
}

// Size returns the number of configurations in the grid.
func (s Space) Size() int {
	return len(s.CUCounts) * len(s.CoreClocksMHz) * len(s.MemClocksMHz)
}

// Configs enumerates every configuration in the grid in a fixed order:
// memory clock fastest, then core clock, then CU count.
func (s Space) Configs() []Config {
	out := make([]Config, 0, s.Size())
	for _, cu := range s.CUCounts {
		for _, fc := range s.CoreClocksMHz {
			for _, fm := range s.MemClocksMHz {
				out = append(out, Config{CUs: cu, CoreClockMHz: fc, MemClockMHz: fm})
			}
		}
	}
	return out
}

// Equal reports whether two grids have identical axes (element-wise;
// a NaN axis value never compares equal, as everywhere else).
func (s Space) Equal(t Space) bool {
	return slices.Equal(s.CUCounts, t.CUCounts) &&
		slices.Equal(s.CoreClocksMHz, t.CoreClocksMHz) &&
		slices.Equal(s.MemClocksMHz, t.MemClocksMHz)
}

// Clone returns a deep copy of the grid, sharing no axis storage with
// the receiver.
func (s Space) Clone() Space {
	return Space{
		CUCounts:      slices.Clone(s.CUCounts),
		CoreClocksMHz: slices.Clone(s.CoreClocksMHz),
		MemClocksMHz:  slices.Clone(s.MemClocksMHz),
	}
}

// AxesValid reports whether every configuration in the grid passes
// Config.Validate. Grid configs never set L2Override and Validate is a
// pure conjunction of per-axis range checks, so checking each axis
// value once decides the full cross product — the sweep's up-front
// validation uses this to avoid a per-config pass over the grid.
func (s Space) AxesValid() bool {
	for _, cu := range s.CUCounts {
		if !validCUs(cu) {
			return false
		}
	}
	for _, f := range s.CoreClocksMHz {
		if !validCoreMHz(f) {
			return false
		}
	}
	for _, f := range s.MemClocksMHz {
		if !validMemMHz(f) {
			return false
		}
	}
	return true
}

// Index returns the position of config c in the Configs ordering, or
// -1 if c is not a grid point.
func (s Space) Index(c Config) int {
	ci := indexInt(s.CUCounts, c.CUs)
	fi := indexFloat(s.CoreClocksMHz, c.CoreClockMHz)
	mi := indexFloat(s.MemClocksMHz, c.MemClockMHz)
	if ci < 0 || fi < 0 || mi < 0 {
		return -1
	}
	return (ci*len(s.CoreClocksMHz)+fi)*len(s.MemClocksMHz) + mi
}

// At returns the configuration with the given axis indices.
// It panics if an index is out of range, as slice indexing would.
func (s Space) At(cuIdx, coreIdx, memIdx int) Config {
	return Config{
		CUs:          s.CUCounts[cuIdx],
		CoreClockMHz: s.CoreClocksMHz[coreIdx],
		MemClockMHz:  s.MemClocksMHz[memIdx],
	}
}

// Max returns the strongest configuration of the grid (top of every
// axis).
func (s Space) Max() Config {
	return s.At(len(s.CUCounts)-1, len(s.CoreClocksMHz)-1, len(s.MemClocksMHz)-1)
}

// Min returns the weakest configuration of the grid.
func (s Space) Min() Config {
	return s.At(0, 0, 0)
}

// CURange returns the ratio between the largest and smallest CU counts.
func (s Space) CURange() float64 {
	return float64(s.CUCounts[len(s.CUCounts)-1]) / float64(s.CUCounts[0])
}

// CoreClockRange returns the ratio between the fastest and slowest core
// clocks.
func (s Space) CoreClockRange() float64 {
	return s.CoreClocksMHz[len(s.CoreClocksMHz)-1] / s.CoreClocksMHz[0]
}

// MemClockRange returns the ratio between the fastest and slowest
// memory clocks.
func (s Space) MemClockRange() float64 {
	return s.MemClocksMHz[len(s.MemClocksMHz)-1] / s.MemClocksMHz[0]
}

func indexInt(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func indexFloat(xs []float64, v float64) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
