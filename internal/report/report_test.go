package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRenderAligned(t *testing.T) {
	tbl := Table{Title: "T", Header: []string{"name", "value"}}
	tbl.AddRow("short", 1.0)
	tbl.AddRow("a-much-longer-name", 123.456)
	out := tbl.String()
	if !strings.Contains(out, "T\n") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[4], "123.456") {
		t.Errorf("float not formatted: %q", lines[4])
	}
	// Columns align: "value" header starts at the same offset as 1.
	hdrIdx := strings.Index(lines[1], "value")
	cellIdx := strings.Index(lines[3], "1")
	if hdrIdx != cellIdx {
		t.Errorf("columns misaligned: header at %d, cell at %d\n%s", hdrIdx, cellIdx, out)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{1, "1"}, {44, "44"}, {1.5, "1.500"}, {0.333333, "0.333"}, {-2, "-2"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.in); got != tt.want {
			t.Errorf("FormatFloat(%g) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := Table{Header: []string{"a", "b"}}
	tbl.AddRow("plain", "with,comma")
	tbl.AddRow(`quote"inside`, "x")
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, `"with,comma"`) {
		t.Errorf("comma cell not quoted: %s", got)
	}
	if !strings.Contains(got, `"quote""inside"`) {
		t.Errorf("quote cell not escaped: %s", got)
	}
}

func TestLineChartRender(t *testing.T) {
	c := LineChart{
		Title:  "scaling",
		XLabel: "CUs", YLabel: "speedup",
		Series: []Series{
			{Name: "linear", X: []float64{4, 24, 44}, Y: []float64{1, 6, 11}},
			{Name: "flat", X: []float64{4, 24, 44}, Y: []float64{1, 1, 1}},
		},
	}
	out := c.String()
	if !strings.Contains(out, "scaling") || !strings.Contains(out, "linear") {
		t.Fatalf("chart missing labels:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("chart missing series marks:\n%s", out)
	}
	if !strings.Contains(out, "x: CUs") {
		t.Errorf("chart missing axis labels:\n%s", out)
	}
}

func TestLineChartEmpty(t *testing.T) {
	c := LineChart{Title: "empty"}
	var buf bytes.Buffer
	if err := c.Render(&buf); err == nil {
		t.Error("empty chart rendered without error")
	}
	if !strings.Contains(c.String(), "chart error") {
		t.Error("String() hides the error")
	}
}

func TestLineChartConstantSeries(t *testing.T) {
	c := LineChart{Series: []Series{{Name: "const", X: []float64{1, 2}, Y: []float64{5, 5}}}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatalf("constant series: %v", err)
	}
}

func TestHeatmapRender(t *testing.T) {
	h := Heatmap{
		Title:     "surface",
		RowLabels: []string{"4", "44"},
		ColLabels: []string{"200", "1000"},
		Values:    [][]float64{{1, 2}, {3, 55}},
	}
	out := h.String()
	if !strings.Contains(out, "surface") || !strings.Contains(out, "scale:") {
		t.Fatalf("heatmap incomplete:\n%s", out)
	}
	if !strings.Contains(out, "@@") {
		t.Fatalf("hottest cell not at top shade:\n%s", out)
	}
}

func TestHeatmapErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Heatmap{}).Render(&buf); err == nil {
		t.Error("empty heatmap accepted")
	}
	h := Heatmap{Values: [][]float64{{1, 2}, {3}}}
	if err := h.Render(&buf); err == nil {
		t.Error("ragged heatmap accepted")
	}
}

func TestHeatmapConstant(t *testing.T) {
	h := Heatmap{Values: [][]float64{{2, 2}, {2, 2}}}
	var buf bytes.Buffer
	if err := h.Render(&buf); err != nil {
		t.Fatalf("constant heatmap: %v", err)
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := Table{Title: "Caption", Header: []string{"a", "b"}}
	tbl.AddRow("x|y", 2.0)
	var buf bytes.Buffer
	if err := tbl.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "**Caption**") {
		t.Errorf("markdown missing caption:\n%s", out)
	}
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "|---|---|") {
		t.Errorf("markdown missing header/rule:\n%s", out)
	}
	if !strings.Contains(out, `x\|y`) {
		t.Errorf("pipe not escaped:\n%s", out)
	}
}
