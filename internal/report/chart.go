package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// X and Y are the data points; lengths must match.
	X, Y []float64
}

// LineChart renders one or more series as an ASCII scatter-line plot.
type LineChart struct {
	// Title is printed above the chart.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// Width and Height are the plot area in characters; zero values
	// default to 64x16.
	Width, Height int
	// Series are the plotted lines.
	Series []Series
}

// seriesMarks are the glyphs assigned to successive series.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func (c *LineChart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return fmt.Errorf("report: chart %q has no data", c.Title)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", seriesMarks[si%len(seriesMarks)], s.Name)
	}
	fmt.Fprintf(&b, "%10.3g +%s\n", ymax, strings.Repeat("-", width))
	for _, row := range grid {
		fmt.Fprintf(&b, "%10s |%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%10.3g +%s\n", ymin, strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-10.3g%*s\n", "", xmin, width-10, fmt.Sprintf("%.3g", xmax))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%10s  x: %s   y: %s\n", "", c.XLabel, c.YLabel)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the chart to a string, or an error note.
func (c *LineChart) String() string {
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		return fmt.Sprintf("(chart error: %v)", err)
	}
	return b.String()
}

// Heatmap renders a matrix as ASCII shades.
type Heatmap struct {
	// Title is printed above the map.
	Title string
	// RowLabels and ColLabels annotate the axes (rows render top-down).
	RowLabels, ColLabels []string
	// Values is the matrix; rows may not be ragged.
	Values [][]float64
}

// shades orders glyphs from cold to hot.
const shades = " .:-=+*#%@"

// Render draws the heatmap with a scale legend.
func (h *Heatmap) Render(w io.Writer) error {
	if len(h.Values) == 0 {
		return fmt.Errorf("report: heatmap %q has no data", h.Title)
	}
	min, max := math.Inf(1), math.Inf(-1)
	cols := len(h.Values[0])
	for _, row := range h.Values {
		if len(row) != cols {
			return fmt.Errorf("report: heatmap %q is ragged", h.Title)
		}
		for _, v := range row {
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
	}
	if max == min {
		max = min + 1
	}
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	labelW := 0
	for _, l := range h.RowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for r, row := range h.Values {
		label := ""
		if r < len(h.RowLabels) {
			label = h.RowLabels[r]
		}
		fmt.Fprintf(&b, "%*s |", labelW, label)
		for _, v := range row {
			idx := int((v - min) / (max - min) * float64(len(shades)-1))
			ch := shades[idx]
			fmt.Fprintf(&b, "%c%c", ch, ch)
		}
		b.WriteString("|\n")
	}
	if len(h.ColLabels) > 0 {
		fmt.Fprintf(&b, "%*s  cols: %s\n", labelW, "", strings.Join(h.ColLabels, " "))
	}
	fmt.Fprintf(&b, "%*s  scale: %.3g %q %.3g\n", labelW, "", min, shades, max)
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the heatmap to a string, or an error note.
func (h *Heatmap) String() string {
	var b strings.Builder
	if err := h.Render(&b); err != nil {
		return fmt.Sprintf("(heatmap error: %v)", err)
	}
	return b.String()
}
