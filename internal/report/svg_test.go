package report

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func wellFormed(t *testing.T, data []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(data))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v", err)
		}
	}
}

func TestLineChartSVG(t *testing.T) {
	c := LineChart{
		Title:  "scaling <test> & more",
		XLabel: "CUs", YLabel: "speedup",
		Series: []Series{
			{Name: "linear", X: []float64{4, 24, 44}, Y: []float64{1, 6, 11}},
			{Name: "flat", X: []float64{4, 24, 44}, Y: []float64{1, 1, 1}},
		},
	}
	var buf bytes.Buffer
	if err := c.RenderSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wellFormed(t, buf.Bytes())
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
	if got := strings.Count(out, "<circle"); got != 6 {
		t.Errorf("markers = %d, want 6", got)
	}
	if !strings.Contains(out, "&lt;test&gt; &amp; more") {
		t.Error("title not escaped")
	}
	if !strings.Contains(out, "CUs") || !strings.Contains(out, "speedup") {
		t.Error("axis labels missing")
	}
}

func TestLineChartSVGEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&LineChart{Title: "e"}).RenderSVG(&buf); err == nil {
		t.Error("empty chart rendered")
	}
}

func TestLineChartSVGConstant(t *testing.T) {
	c := LineChart{Series: []Series{{Name: "c", X: []float64{1, 2}, Y: []float64{5, 5}}}}
	var buf bytes.Buffer
	if err := c.RenderSVG(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
}

func TestHeatmapSVG(t *testing.T) {
	h := Heatmap{
		Title:     "surface",
		RowLabels: []string{"4cu", "44cu"},
		ColLabels: []string{"200", "1000"},
		Values:    [][]float64{{1, 2}, {3, 55}},
	}
	var buf bytes.Buffer
	if err := h.RenderSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wellFormed(t, buf.Bytes())
	// 4 cells plus the background rect.
	if got := strings.Count(out, "<rect"); got != 5 {
		t.Errorf("rects = %d, want 5", got)
	}
	if !strings.Contains(out, "44cu") || !strings.Contains(out, "1000") {
		t.Error("labels missing")
	}
}

func TestHeatmapSVGErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Heatmap{}).RenderSVG(&buf); err == nil {
		t.Error("empty heatmap rendered")
	}
	bad := Heatmap{Values: [][]float64{{1, 2}, {3}}}
	if err := bad.RenderSVG(&buf); err == nil {
		t.Error("ragged heatmap rendered")
	}
}
