package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// SVG rendering for charts and heatmaps: publication-shaped vector
// figures from the same data the ASCII renderers draw, using only the
// standard library. cmd/taxonomy -svgdir writes one file per figure.

// svgPalette cycles series colours (colour-blind-safe-ish).
var svgPalette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb",
}

const (
	svgW, svgH             = 640, 400
	svgMarginL, svgMarginR = 70, 20
	svgMarginT, svgMarginB = 50, 55
	svgPlotW               = svgW - svgMarginL - svgMarginR
	svgPlotH               = svgH - svgMarginT - svgMarginB
)

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// RenderSVG draws the chart as a standalone SVG document.
func (c *LineChart) RenderSVG(w io.Writer) error {
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return fmt.Errorf("report: chart %q has no data", c.Title)
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	px := func(x float64) float64 {
		return svgMarginL + (x-xmin)/(xmax-xmin)*svgPlotW
	}
	py := func(y float64) float64 {
		return svgMarginT + svgPlotH - (y-ymin)/(ymax-ymin)*svgPlotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		svgW, svgH, svgW, svgH)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		svgMarginL, svgEscape(c.Title))

	// Axes box and ticks.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#333"/>`+"\n",
		svgMarginL, svgMarginT, svgPlotW, svgPlotH)
	for i := 0; i <= 4; i++ {
		fx := xmin + float64(i)/4*(xmax-xmin)
		fy := ymin + float64(i)/4*(ymax-ymin)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%.3g</text>`+"\n",
			px(fx), svgMarginT+svgPlotH+16, fx)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%.3g</text>`+"\n",
			svgMarginL-6, py(fy)+3, fy)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n",
			px(fx), svgMarginT, px(fx), svgMarginT+svgPlotH)
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			svgMarginL+svgPlotW/2, svgH-12, svgEscape(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			svgMarginT+svgPlotH/2, svgMarginT+svgPlotH/2, svgEscape(c.YLabel))
	}

	// Series polylines + legend.
	for si, s := range c.Series {
		color := svgPalette[si%len(svgPalette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
				px(s.X[i]), py(s.Y[i]), color)
		}
		ly := svgMarginT + 14 + 14*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			svgMarginL+8, ly-9, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			svgMarginL+22, ly, svgEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderSVG draws the heatmap as a standalone SVG document with a
// white-to-dark-red ramp.
func (h *Heatmap) RenderSVG(w io.Writer) error {
	if len(h.Values) == 0 {
		return fmt.Errorf("report: heatmap %q has no data", h.Title)
	}
	rows := len(h.Values)
	cols := len(h.Values[0])
	min, max := math.Inf(1), math.Inf(-1)
	for _, row := range h.Values {
		if len(row) != cols {
			return fmt.Errorf("report: heatmap %q is ragged", h.Title)
		}
		for _, v := range row {
			min, max = math.Min(min, v), math.Max(max, v)
		}
	}
	if max == min {
		max = min + 1
	}
	cellW := float64(svgPlotW) / float64(cols)
	cellH := float64(svgPlotH) / float64(rows)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		svgW, svgH, svgW, svgH)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		svgMarginL, svgEscape(h.Title))
	for r, row := range h.Values {
		for cIdx, v := range row {
			t := (v - min) / (max - min)
			// White -> dark red ramp.
			rr := 255 - int(85*t)
			gg := 255 - int(225*t)
			bb := 255 - int(225*t)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.2f" height="%.2f" fill="rgb(%d,%d,%d)"/>`+"\n",
				svgMarginL+float64(cIdx)*cellW, svgMarginT+float64(r)*cellH, cellW, cellH, rr, gg, bb)
		}
		if r < len(h.RowLabels) {
			fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="9" text-anchor="end">%s</text>`+"\n",
				svgMarginL-4, svgMarginT+(float64(r)+0.65)*cellH, svgEscape(h.RowLabels[r]))
		}
	}
	for cIdx := 0; cIdx < cols && cIdx < len(h.ColLabels); cIdx++ {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="9" text-anchor="middle">%s</text>`+"\n",
			svgMarginL+(float64(cIdx)+0.5)*cellW, svgMarginT+svgPlotH+14, svgEscape(h.ColLabels[cIdx]))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">scale: %.3g (white) to %.3g (dark)</text>`+"\n",
		svgMarginL, svgH-12, min, max)
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
