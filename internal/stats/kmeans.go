package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Clustering is the result of a k-means run.
type Clustering struct {
	// Centroids holds k centroid vectors.
	Centroids [][]float64
	// Assignments maps each input point to a centroid index.
	Assignments []int
	// Inertia is the total squared distance of points to their
	// centroids (the k-means objective).
	Inertia float64
	// Iterations is how many Lloyd iterations ran before convergence.
	Iterations int
}

// KMeans clusters points into k groups using k-means++ seeding and
// Lloyd iteration, restarted `restarts` times with the best objective
// kept. It is deterministic for a given seed. Points must be non-empty
// and share a dimension; k must be in [1, len(points)].
func KMeans(points [][]float64, k int, seed int64, restarts int) (Clustering, error) {
	if len(points) == 0 {
		return Clustering{}, ErrEmpty
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return Clustering{}, fmt.Errorf("stats: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if k < 1 || k > len(points) {
		return Clustering{}, fmt.Errorf("stats: k=%d out of range [1,%d]", k, len(points))
	}
	if restarts < 1 {
		restarts = 1
	}
	rng := rand.New(rand.NewSource(seed))
	best := Clustering{Inertia: math.Inf(1)}
	for r := 0; r < restarts; r++ {
		c := lloyd(points, k, rng)
		if c.Inertia < best.Inertia {
			best = c
		}
	}
	return best, nil
}

func lloyd(points [][]float64, k int, rng *rand.Rand) Clustering {
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	const maxIter = 200
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			bi, bd := 0, math.Inf(1)
			for ci, c := range centroids {
				if d := sqDist(p, c); d < bd {
					bi, bd = ci, d
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids; an emptied cluster keeps its position.
		dim := len(points[0])
		sums := make([][]float64, k)
		counts := make([]int, k)
		for ci := range sums {
			sums[ci] = make([]float64, dim)
		}
		for i, p := range points {
			ci := assign[i]
			counts[ci]++
			for d, v := range p {
				sums[ci][d] += v
			}
		}
		for ci := range centroids {
			if counts[ci] == 0 {
				continue
			}
			for d := range centroids[ci] {
				centroids[ci][d] = sums[ci][d] / float64(counts[ci])
			}
		}
	}
	inertia := 0.0
	for i, p := range points {
		inertia += sqDist(p, centroids[assign[i]])
	}
	return Clustering{Centroids: centroids, Assignments: assign, Inertia: inertia, Iterations: iter}
}

// seedPlusPlus picks k initial centroids with k-means++ weighting.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var next []float64
		if total == 0 {
			next = points[rng.Intn(len(points))]
		} else {
			target := rng.Float64() * total
			acc := 0.0
			next = points[len(points)-1]
			for i, p := range points {
				acc += d2[i]
				if acc >= target {
					next = p
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), next...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Silhouette returns the mean silhouette score of a clustering in
// [-1, 1]; higher is better separated. Clusters with a single point
// contribute 0. It returns NaN when every point is in one cluster.
func Silhouette(points [][]float64, assign []int, k int) float64 {
	if len(points) == 0 || len(points) != len(assign) {
		return math.NaN()
	}
	sizes := make([]int, k)
	for _, a := range assign {
		sizes[a]++
	}
	nonEmpty := 0
	for _, s := range sizes {
		if s > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		return math.NaN()
	}
	total := 0.0
	for i, p := range points {
		meanTo := make([]float64, k)
		for j, q := range points {
			if i == j {
				continue
			}
			meanTo[assign[j]] += math.Sqrt(sqDist(p, q))
		}
		own := assign[i]
		a := 0.0
		if sizes[own] > 1 {
			a = meanTo[own] / float64(sizes[own]-1)
		} else {
			continue // singleton contributes 0
		}
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || sizes[c] == 0 {
				continue
			}
			if m := meanTo[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(len(points))
}

// ElbowCurve runs KMeans for every k in [1, maxK] and returns the
// inertia sequence, for cluster-count selection plots.
func ElbowCurve(points [][]float64, maxK int, seed int64, restarts int) ([]float64, error) {
	if maxK < 1 {
		return nil, fmt.Errorf("stats: maxK=%d", maxK)
	}
	if maxK > len(points) {
		maxK = len(points)
	}
	out := make([]float64, 0, maxK)
	for k := 1; k <= maxK; k++ {
		c, err := KMeans(points, k, seed, restarts)
		if err != nil {
			return nil, err
		}
		out = append(out, c.Inertia)
	}
	return out, nil
}
