package stats

import (
	"fmt"
	"math"
)

// Agglomerative hierarchical clustering with average linkage — the
// second data-driven grouping method. The paper's exact methodology is
// unknown; running both k-means and hierarchical clustering brackets
// the plausible design space, and their agreement is itself reported.

// Hierarchical clusters points into k groups by agglomerative merging
// with average linkage (UPGMA): start with every point alone and merge
// the closest pair of clusters until k remain. Deterministic by
// construction. It returns assignments compatible with Silhouette.
func Hierarchical(points [][]float64, k int) ([]int, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrEmpty
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("stats: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("stats: k=%d out of range [1,%d]", k, n)
	}

	// Pairwise distances; clusters tracked as member index lists.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = math.Sqrt(sqDist(points[i], points[j]))
		}
	}
	clusters := make([][]int, n)
	active := make([]bool, n)
	for i := range clusters {
		clusters[i] = []int{i}
		active[i] = true
	}
	// Average-linkage distance between live clusters, updated lazily
	// with the Lance-Williams formula.
	link := make([][]float64, n)
	for i := range link {
		link[i] = make([]float64, n)
		copy(link[i], dist[i])
	}

	remaining := n
	for remaining > k {
		// Find the closest active pair (a < b).
		ba, bb, best := -1, -1, math.Inf(1)
		for a := 0; a < n; a++ {
			if !active[a] {
				continue
			}
			for b := a + 1; b < n; b++ {
				if !active[b] {
					continue
				}
				if link[a][b] < best {
					ba, bb, best = a, b, link[a][b]
				}
			}
		}
		// Merge bb into ba; update average-linkage distances.
		na := float64(len(clusters[ba]))
		nb := float64(len(clusters[bb]))
		for c := 0; c < n; c++ {
			if !active[c] || c == ba || c == bb {
				continue
			}
			merged := (na*link[ba][c] + nb*link[bb][c]) / (na + nb)
			link[ba][c], link[c][ba] = merged, merged
		}
		clusters[ba] = append(clusters[ba], clusters[bb]...)
		clusters[bb] = nil
		active[bb] = false
		remaining--
	}

	assign := make([]int, n)
	label := 0
	for i := 0; i < n; i++ {
		if !active[i] {
			continue
		}
		for _, m := range clusters[i] {
			assign[m] = label
		}
		label++
	}
	return assign, nil
}

// ClusterAgreement returns the pairwise agreement (Rand index) between
// two assignments of the same points: the fraction of point pairs that
// both clusterings either join or separate.
func ClusterAgreement(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: assignment lengths %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, fmt.Errorf("stats: need >= 2 points, have %d", n)
	}
	agree, total := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			total++
			if (a[i] == a[j]) == (b[i] == b[j]) {
				agree++
			}
		}
	}
	return float64(agree) / float64(total), nil
}
