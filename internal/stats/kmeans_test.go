package stats

import (
	"math"
	"testing"
)

// twoBlobs builds two well-separated 2-D clusters.
func twoBlobs() [][]float64 {
	var pts [][]float64
	for i := 0; i < 20; i++ {
		pts = append(pts, []float64{float64(i%5) * 0.1, float64(i/5) * 0.1})
		pts = append(pts, []float64{10 + float64(i%5)*0.1, 10 + float64(i/5)*0.1})
	}
	return pts
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	pts := twoBlobs()
	c, err := KMeans(pts, 2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Every even index (blob A) must share one label, odd the other.
	a := c.Assignments[0]
	for i := 0; i < len(pts); i += 2 {
		if c.Assignments[i] != a {
			t.Fatalf("blob A split: point %d labelled %d, want %d", i, c.Assignments[i], a)
		}
	}
	b := c.Assignments[1]
	if b == a {
		t.Fatal("both blobs in one cluster")
	}
	for i := 1; i < len(pts); i += 2 {
		if c.Assignments[i] != b {
			t.Fatalf("blob B split: point %d labelled %d, want %d", i, c.Assignments[i], b)
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts := twoBlobs()
	a, err := KMeans(pts, 3, 42, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, 3, 42, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia {
		t.Fatalf("non-deterministic inertia: %g vs %g", a.Inertia, b.Inertia)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("non-deterministic assignment at %d", i)
		}
	}
}

func TestKMeansK1(t *testing.T) {
	pts := twoBlobs()
	c, err := KMeans(pts, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range c.Assignments {
		if a != 0 {
			t.Fatal("k=1 produced a second label")
		}
	}
	// Centroid must be the global mean.
	var mx, my float64
	for _, p := range pts {
		mx += p[0]
		my += p[1]
	}
	mx /= float64(len(pts))
	my /= float64(len(pts))
	if math.Abs(c.Centroids[0][0]-mx) > 1e-9 || math.Abs(c.Centroids[0][1]-my) > 1e-9 {
		t.Fatalf("k=1 centroid %v, want (%g,%g)", c.Centroids[0], mx, my)
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 1, 1, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := KMeans([][]float64{{1}, {2}}, 3, 1, 1); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := KMeans([][]float64{{1}, {2}}, 0, 1, 1); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := KMeans([][]float64{{1}, {2, 3}}, 1, 1, 1); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestKMeansInertiaNonIncreasingInK(t *testing.T) {
	pts := twoBlobs()
	curve, err := ElbowCurve(pts, 6, 7, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 6 {
		t.Fatalf("elbow curve length %d, want 6", len(curve))
	}
	for k := 1; k < len(curve); k++ {
		// With enough restarts inertia should be (near) monotone.
		if curve[k] > curve[k-1]*1.05 {
			t.Errorf("inertia rose at k=%d: %g -> %g", k+1, curve[k-1], curve[k])
		}
	}
	if curve[1] > curve[0]*0.1 {
		t.Errorf("two-blob data: k=2 inertia %g not << k=1 inertia %g", curve[1], curve[0])
	}
}

func TestSilhouettePrefersTrueK(t *testing.T) {
	pts := twoBlobs()
	c2, err := KMeans(pts, 2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	c5, err := KMeans(pts, 5, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2 := Silhouette(pts, c2.Assignments, 2)
	s5 := Silhouette(pts, c5.Assignments, 5)
	if s2 <= s5 {
		t.Fatalf("silhouette(k=2)=%g <= silhouette(k=5)=%g on two blobs", s2, s5)
	}
	if s2 < 0.8 {
		t.Fatalf("silhouette(k=2)=%g, want > 0.8 for well-separated blobs", s2)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	pts := [][]float64{{1}, {2}, {3}}
	if got := Silhouette(pts, []int{0, 0, 0}, 1); !math.IsNaN(got) {
		t.Errorf("single-cluster silhouette = %g, want NaN", got)
	}
	if got := Silhouette(nil, nil, 2); !math.IsNaN(got) {
		t.Errorf("empty silhouette = %g, want NaN", got)
	}
}

func TestSilhouetteBounds(t *testing.T) {
	pts := twoBlobs()
	for k := 2; k <= 5; k++ {
		c, err := KMeans(pts, k, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		s := Silhouette(pts, c.Assignments, k)
		if s < -1 || s > 1 {
			t.Fatalf("silhouette(k=%d) = %g out of [-1,1]", k, s)
		}
	}
}
