package stats

import (
	"math"
	"testing"
)

func TestLinearPerfectFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	fit, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %g, want 1", fit.R2)
	}
}

func TestLinearNoisyFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1}
	fit, err := Linear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope < 1.8 || fit.Slope > 2.2 {
		t.Errorf("slope = %g, want ~2", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %g, want > 0.99", fit.R2)
	}
}

func TestLinearConstantY(t *testing.T) {
	fit, err := Linear([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Errorf("constant fit = %+v, want slope 0 R2 1", fit)
	}
}

func TestLinearErrors(t *testing.T) {
	if _, err := Linear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Linear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Linear([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestPearson(t *testing.T) {
	if got := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %g, want 1", got)
	}
	if got := Pearson([]float64{1, 2, 3}, []float64{6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %g, want -1", got)
	}
	if got := Pearson([]float64{1, 1}, []float64{1, 2}); !math.IsNaN(got) {
		t.Errorf("constant-x correlation = %g, want NaN", got)
	}
	if got := Pearson([]float64{1}, []float64{1, 2}); !math.IsNaN(got) {
		t.Errorf("mismatched correlation = %g, want NaN", got)
	}
}
