package stats

import (
	"fmt"
	"math"
)

// LinearFit is the result of an ordinary least-squares line fit.
type LinearFit struct {
	// Slope and Intercept define the fitted line y = Slope*x + Intercept.
	Slope, Intercept float64
	// R2 is the coefficient of determination (1 = perfect fit). For a
	// constant y it is defined as 1 if the fit is exact, else 0.
	R2 float64
}

// Linear fits y = a*x + b by least squares. It needs at least two
// points with distinct x values.
func Linear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("stats: need >= 2 points, have %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: degenerate fit, all x equal")
	}
	slope := sxy / sxx
	intercept := my - slope*mx

	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	r2 := 0.0
	switch {
	case ssTot > 0:
		r2 = 1 - ssRes/ssTot
	case ssRes == 0:
		r2 = 1
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// Pearson returns the Pearson correlation coefficient, or NaN when
// either sample is constant or the lengths mismatch.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}
