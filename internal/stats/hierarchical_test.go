package stats

import "testing"

func TestHierarchicalSeparatesBlobs(t *testing.T) {
	pts := twoBlobs()
	assign, err := Hierarchical(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := assign[0]
	for i := 0; i < len(pts); i += 2 {
		if assign[i] != a {
			t.Fatalf("blob A split at %d", i)
		}
	}
	b := assign[1]
	if b == a {
		t.Fatal("blobs merged")
	}
	for i := 1; i < len(pts); i += 2 {
		if assign[i] != b {
			t.Fatalf("blob B split at %d", i)
		}
	}
}

func TestHierarchicalK1AndKN(t *testing.T) {
	pts := twoBlobs()
	one, err := Hierarchical(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range one {
		if a != 0 {
			t.Fatal("k=1 produced multiple labels")
		}
	}
	all, err := Hierarchical(pts, len(pts))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range all {
		if seen[a] {
			t.Fatal("k=n merged points")
		}
		seen[a] = true
	}
}

func TestHierarchicalErrors(t *testing.T) {
	if _, err := Hierarchical(nil, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Hierarchical([][]float64{{1}, {2}}, 3); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := Hierarchical([][]float64{{1}, {2, 3}}, 1); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestHierarchicalAgreesWithKMeansOnBlobs(t *testing.T) {
	pts := twoBlobs()
	h, err := Hierarchical(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	km, err := KMeans(pts, 2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	agree, err := ClusterAgreement(h, km.Assignments)
	if err != nil {
		t.Fatal(err)
	}
	if agree != 1 {
		t.Fatalf("methods disagree on separable blobs: Rand index %g", agree)
	}
}

func TestClusterAgreement(t *testing.T) {
	if got, err := ClusterAgreement([]int{0, 0, 1, 1}, []int{1, 1, 0, 0}); err != nil || got != 1 {
		t.Errorf("relabelled identical clustering agreement = %g (%v), want 1", got, err)
	}
	got, err := ClusterAgreement([]int{0, 0, 1, 1}, []int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got >= 1 || got <= 0 {
		t.Errorf("crossed clustering agreement = %g, want interior", got)
	}
	if _, err := ClusterAgreement([]int{0}, []int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ClusterAgreement([]int{0}, []int{0}); err == nil {
		t.Error("single point accepted")
	}
}
