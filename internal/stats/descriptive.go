// Package stats provides the statistical machinery the taxonomy
// pipeline needs: descriptive statistics, linear regression, k-means
// clustering with k-means++ seeding, cluster-quality scores (inertia
// elbow, silhouette), and empirical CDFs. Everything is deterministic
// given a seed and uses only the standard library.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty reports an operation on an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values; it returns
// NaN if the sample is empty or contains a non-positive value.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Variance returns the population variance, or NaN for an empty sample.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0..1) by linear interpolation on the
// sorted sample. It returns NaN for an empty sample; q is clamped.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MinMax returns the extrema; it returns an error for an empty sample.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// CDF returns the empirical distribution of the sample as sorted
// (value, cumulative fraction) pairs, one per input point.
func CDF(xs []float64) (values, fractions []float64) {
	if len(xs) == 0 {
		return nil, nil
	}
	values = append([]float64(nil), xs...)
	sort.Float64s(values)
	fractions = make([]float64, len(values))
	for i := range values {
		fractions[i] = float64(i+1) / float64(len(values))
	}
	return values, fractions
}
