package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %g, want NaN", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %g, want 2", got)
	}
	if got := GeoMean([]float64{2, 0}); !math.IsNaN(got) {
		t.Errorf("GeoMean with zero = %g, want NaN", got)
	}
	if got := GeoMean(nil); !math.IsNaN(got) {
		t.Errorf("GeoMean(nil) = %g, want NaN", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %g, want 2", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	tests := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", tt.q, got, tt.want)
		}
	}
	if got := Median([]float64{1, 2}); got != 1.5 {
		t.Errorf("Median = %g, want 1.5", got)
	}
	if got := Quantile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("Quantile(nil) = %g, want NaN", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || min != -1 || max != 7 {
		t.Errorf("MinMax = (%g, %g, %v)", min, max, err)
	}
	if _, _, err := MinMax(nil); err == nil {
		t.Error("MinMax(nil) succeeded")
	}
}

func TestCDF(t *testing.T) {
	vs, fs := CDF([]float64{3, 1, 2})
	if !sort.Float64sAreSorted(vs) {
		t.Fatalf("CDF values not sorted: %v", vs)
	}
	if fs[len(fs)-1] != 1 {
		t.Fatalf("CDF does not end at 1: %v", fs)
	}
	if vs2, fs2 := CDF(nil); vs2 != nil || fs2 != nil {
		t.Error("CDF(nil) returned non-nil")
	}
}

func TestMeanBetweenMinMaxProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		min, max, err := MinMax(clean)
		if err != nil {
			return false
		}
		m := Mean(clean)
		return m >= min-1e-6 && m <= max+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
