// Package isa defines a compact instruction-level representation of
// GPGPU kernels — a miniature GCN-flavoured ISA — and the lowering
// from the behavioural kernel model to instruction streams. The
// execution-driven pipeline engine in internal/gcn interprets these
// streams cycle by cycle; everything else in the system works from the
// behavioural model, so the IR's job is to validate that the coarse
// engines' scaling behaviour survives at instruction granularity.
package isa

import (
	"errors"
	"fmt"

	"gpuscale/internal/kernel"
)

// Op is an instruction class of the mini ISA.
type Op int

// Instruction classes. Each models the issue/latency behaviour of its
// GCN counterpart, not its semantics.
const (
	// OpVALU is a vector-ALU instruction (64 lanes).
	OpVALU Op = iota
	// OpSALU is a scalar-ALU instruction (free issue port).
	OpSALU
	// OpLDS is a local-data-share access.
	OpLDS
	// OpLoad is a vector global load.
	OpLoad
	// OpStore is a vector global store.
	OpStore
	// OpBarrier synchronises the wavefronts of a workgroup.
	OpBarrier
	// OpEnd terminates the wave.
	OpEnd
)

var opNames = [...]string{"v_alu", "s_alu", "ds_op", "load", "store", "barrier", "end"}

// String returns the mnemonic.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// Instr is one (macro-)instruction: Count repetitions of the class.
// Macro counts keep lowered programs compact without changing timing,
// except where noted (DependsOnLoad applies to each repetition).
type Instr struct {
	// Op is the instruction class.
	Op Op
	// Count is how many back-to-back instances this entry stands for
	// (>= 1).
	Count int
	// DependsOnLoad marks instructions that must wait for the wave's
	// outstanding loads to return before issuing (a scoreboard
	// dependency, GCN's s_waitcnt).
	DependsOnLoad bool
}

// Program is the instruction stream one wavefront executes.
type Program struct {
	// Name identifies the source kernel.
	Name string
	// Body is the stream; the final instruction must be OpEnd.
	Body []Instr

	// dynLen caches the total dynamic instruction count. Lower fills
	// it in before the program is published; hand-built programs leave
	// it 0 and DynamicLength falls back to summing Body.
	dynLen int
}

// Validation errors.
var (
	ErrEmptyProgram = errors.New("isa: empty program")
	ErrNoEnd        = errors.New("isa: program does not finish with end")
	ErrBadCount     = errors.New("isa: non-positive instruction count")
)

// Validate checks structural well-formedness.
func (p *Program) Validate() error {
	if len(p.Body) == 0 {
		return ErrEmptyProgram
	}
	for i, in := range p.Body {
		if in.Count < 1 {
			return fmt.Errorf("%w: instr %d (%v)", ErrBadCount, i, in.Op)
		}
		if in.Op < OpVALU || in.Op > OpEnd {
			return fmt.Errorf("isa: unknown op %d at instr %d", int(in.Op), i)
		}
	}
	if last := p.Body[len(p.Body)-1]; last.Op != OpEnd {
		return ErrNoEnd
	}
	return nil
}

// Counts tallies the dynamic instruction counts per class.
func (p *Program) Counts() map[Op]int {
	out := map[Op]int{}
	for _, in := range p.Body {
		out[in.Op] += in.Count
	}
	return out
}

// DynamicLength returns the total dynamic instruction count.
func (p *Program) DynamicLength() int {
	if p.dynLen > 0 {
		return p.dynLen
	}
	n := 0
	for _, in := range p.Body {
		n += in.Count
	}
	return n
}

// Lower translates a behavioural kernel into one wavefront's
// instruction stream. The stream interleaves the kernel's compute,
// LDS, and memory work the way its MLP structure implies: memory
// accesses issue in batches of EffectiveMLP, each batch followed by a
// dependent compute slice that waits for the loads (the consumer),
// with barriers spread evenly through the stream.
func Lower(k *kernel.Kernel) (*Program, error) {
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("isa: lowering %s: %w", k.Name, err)
	}
	accesses := k.MemAccessesPerWave()
	batches := 0
	if accesses > 0 {
		mlp := int(k.EffectiveMLP())
		if mlp < 1 {
			mlp = 1
		}
		batches = (accesses + mlp - 1) / mlp
	}

	var body []Instr
	emit := func(op Op, n int, dep bool) {
		if n <= 0 {
			return
		}
		body = append(body, Instr{Op: op, Count: n, DependsOnLoad: dep})
	}

	if batches == 0 {
		// Pure compute: straight-line stream.
		emit(OpSALU, k.SALUPerWave, false)
		emit(OpVALU, k.VALUPerWave, false)
		emit(OpLDS, k.LDSOpsPerWave, false)
		emit(OpBarrier, k.BarriersPerWave, false)
	} else {
		loads, stores := k.Mem.LoadsPerWave, k.Mem.StoresPerWave
		valu, salu, lds := k.VALUPerWave, k.SALUPerWave, k.LDSOpsPerWave
		barriers := k.BarriersPerWave
		for b := 0; b < batches; b++ {
			rem := batches - b
			l := loads / rem
			s := stores / rem
			loads -= l
			stores -= s
			// Serially dependent fraction: each such load waits for the
			// wave's outstanding loads (a pointer-chase step); since
			// DependsOnLoad applies per repetition, a Count>1 dependent
			// load entry is itself a chain.
			lDep := int(float64(l)*k.DepChainFraction + 0.5)
			emit(OpLoad, lDep, true)
			emit(OpLoad, l-lDep, false)
			emit(OpStore, s, false)
			// The compute slice consumes the loads: the first chunk
			// is dependent, the rest independent (latency partially
			// hidden, as on real kernels).
			v := valu / rem
			valu -= v
			depPart := v / 4
			emit(OpVALU, depPart, l > 0)
			emit(OpVALU, v-depPart, false)
			sa := salu / rem
			salu -= sa
			emit(OpSALU, sa, false)
			ld := lds / rem
			lds -= ld
			emit(OpLDS, ld, false)
			ba := barriers / rem
			barriers -= ba
			emit(OpBarrier, ba, false)
		}
	}
	body = append(body, Instr{Op: OpEnd, Count: 1, DependsOnLoad: true})
	p := &Program{Name: k.Name, Body: body}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for _, in := range p.Body {
		p.dynLen += in.Count
	}
	return p, nil
}
