package isa

import (
	"errors"
	"testing"

	"gpuscale/internal/kernel"
)

func TestLowerPreservesInstructionCounts(t *testing.T) {
	k := kernel.New("s", "p", "k").
		Compute(5000, 700).
		LDSOps(900, 6).
		Access(kernel.Streaming, 128, 32, 4).
		MustBuild()
	p, err := Lower(k)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Counts()
	if c[OpVALU] != 5000 {
		t.Errorf("VALU = %d, want 5000", c[OpVALU])
	}
	if c[OpSALU] != 700 {
		t.Errorf("SALU = %d, want 700", c[OpSALU])
	}
	if c[OpLDS] != 900 {
		t.Errorf("LDS = %d, want 900", c[OpLDS])
	}
	if c[OpLoad] != 128 {
		t.Errorf("loads = %d, want 128", c[OpLoad])
	}
	if c[OpStore] != 32 {
		t.Errorf("stores = %d, want 32", c[OpStore])
	}
	if c[OpBarrier] != 6 {
		t.Errorf("barriers = %d, want 6", c[OpBarrier])
	}
	if c[OpEnd] != 1 {
		t.Errorf("end = %d, want 1", c[OpEnd])
	}
}

func TestLowerPureCompute(t *testing.T) {
	k := kernel.New("s", "p", "k").
		Compute(1000, 50).
		Access(kernel.Streaming, 0, 0, 0).
		MLP(0).
		MustBuild()
	p, err := Lower(k)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Counts()
	if c[OpLoad] != 0 || c[OpStore] != 0 {
		t.Errorf("pure compute lowered with memory ops: %v", c)
	}
	if c[OpVALU] != 1000 {
		t.Errorf("VALU = %d, want 1000", c[OpVALU])
	}
}

func TestLowerBatchesFollowMLP(t *testing.T) {
	// 64 loads at effective MLP 8 -> 8 load batches.
	k := kernel.New("s", "p", "k").
		Access(kernel.Streaming, 64, 0, 4).
		MLP(8).
		MustBuild()
	p, err := Lower(k)
	if err != nil {
		t.Fatal(err)
	}
	batches := 0
	for _, in := range p.Body {
		if in.Op == OpLoad {
			batches++
		}
	}
	if batches != 8 {
		t.Errorf("load batches = %d, want 8", batches)
	}
	// Dependent compute must appear after loads.
	sawDep := false
	for _, in := range p.Body {
		if in.Op == OpVALU && in.DependsOnLoad {
			sawDep = true
		}
	}
	if !sawDep {
		t.Error("no load-dependent compute emitted")
	}
}

func TestLowerRejectsInvalidKernel(t *testing.T) {
	k := kernel.New("s", "p", "k").MustBuild()
	k.VALUPerWave = 0
	if _, err := Lower(k); err == nil {
		t.Error("invalid kernel lowered")
	}
}

func TestValidate(t *testing.T) {
	if err := (&Program{}).Validate(); !errors.Is(err, ErrEmptyProgram) {
		t.Errorf("empty program: %v", err)
	}
	p := &Program{Body: []Instr{{Op: OpVALU, Count: 1}}}
	if err := p.Validate(); !errors.Is(err, ErrNoEnd) {
		t.Errorf("missing end: %v", err)
	}
	p = &Program{Body: []Instr{{Op: OpVALU, Count: 0}, {Op: OpEnd, Count: 1}}}
	if err := p.Validate(); !errors.Is(err, ErrBadCount) {
		t.Errorf("zero count: %v", err)
	}
	p = &Program{Body: []Instr{{Op: Op(42), Count: 1}, {Op: OpEnd, Count: 1}}}
	if err := p.Validate(); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestDynamicLength(t *testing.T) {
	p := &Program{Body: []Instr{
		{Op: OpVALU, Count: 10},
		{Op: OpLoad, Count: 3},
		{Op: OpEnd, Count: 1},
	}}
	if got := p.DynamicLength(); got != 14 {
		t.Errorf("DynamicLength = %d, want 14", got)
	}
}

func TestOpString(t *testing.T) {
	for o := OpVALU; o <= OpEnd; o++ {
		if o.String() == "" {
			t.Errorf("op %d unnamed", int(o))
		}
	}
	if Op(42).String() != "op(42)" {
		t.Errorf("invalid op = %q", Op(42).String())
	}
}
