package obs

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRelabelTextInjectsWorkerLabel(t *testing.T) {
	src := strings.Join([]string{
		"# HELP rows_total rows completed",
		"# TYPE rows_total counter",
		"rows_total 7",
		`cells_total{status="ok"} 3`,
		`latency_bucket{le="+Inf"} 4`,
		"",
	}, "\n")
	var out bytes.Buffer
	if err := relabelText(&out, strings.NewReader(src), L("worker", "w0"), map[string]bool{}); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"# HELP rows_total rows completed",
		`rows_total{worker="w0"} 7`,
		`cells_total{worker="w0",status="ok"} 3`,
		`latency_bucket{worker="w0",le="+Inf"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("relabelled text missing %q:\n%s", want, text)
		}
	}
}

func TestRelabelTextDedupesFamilyHeaders(t *testing.T) {
	src := "# HELP x stuff\n# TYPE x counter\nx 1\n"
	var out bytes.Buffer
	seen := map[string]bool{}
	for _, w := range []string{"w0", "w1"} {
		if err := relabelText(&out, strings.NewReader(src), L("worker", w), seen); err != nil {
			t.Fatal(err)
		}
	}
	text := out.String()
	if n := strings.Count(text, "# TYPE x counter"); n != 1 {
		t.Errorf("TYPE line appears %d times, want 1:\n%s", n, text)
	}
	if n := strings.Count(text, "# HELP x stuff"); n != 1 {
		t.Errorf("HELP line appears %d times, want 1:\n%s", n, text)
	}
	for _, want := range []string{`x{worker="w0"} 1`, `x{worker="w1"} 1`} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q:\n%s", want, text)
		}
	}
}

func TestRelabelTextEscapesWorkerName(t *testing.T) {
	var out bytes.Buffer
	if err := relabelText(&out, strings.NewReader("up 1\n"), L("worker", `w"0\x`), map[string]bool{}); err != nil {
		t.Fatal(err)
	}
	want := `up{worker="w\"0\\x"} 1`
	if !strings.Contains(out.String(), want) {
		t.Fatalf("escaped injection missing %q:\n%s", want, out.String())
	}
}

func newWorkerMetricsServer(t *testing.T, rows int) *httptest.Server {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("fleet_rows_total", "rows completed").Add(uint64(rows))
	srv := httptest.NewServer(Handler(reg, nil))
	t.Cleanup(srv.Close)
	return srv
}

func TestFederationAggregatesWorkers(t *testing.T) {
	w0 := newWorkerMetricsServer(t, 3)
	w1 := newWorkerMetricsServer(t, 5)

	self := NewRegistry()
	self.Gauge("fleet_workers", "registered workers").Set(2)
	fed := NewFederation(self, nil)
	fed.SetTarget("w0", w0.URL+"/metrics")
	fed.SetTarget("w1", w1.URL+"/metrics")

	var buf bytes.Buffer
	if err := fed.WriteFleet(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`fleet_workers{worker="coordinator"} 2`,
		`fleet_rows_total{worker="w0"} 3`,
		`fleet_rows_total{worker="w1"} 5`,
		`fleet_scrape_up{worker="w0"} 1`,
		`fleet_scrape_up{worker="w1"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("fleet exposition missing %q:\n%s", want, text)
		}
	}
	if n := strings.Count(text, "# TYPE fleet_rows_total counter"); n != 1 {
		t.Errorf("family header appears %d times, want 1:\n%s", n, text)
	}
}

func TestFederationSurvivesDeadWorker(t *testing.T) {
	alive := newWorkerMetricsServer(t, 2)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from here on

	fed := NewFederation(nil, nil)
	fed.SetTarget("alive", alive.URL+"/metrics")
	fed.SetTarget("dead", dead.URL+"/metrics")

	var buf bytes.Buffer
	if err := fed.WriteFleet(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`fleet_scrape_up{worker="alive"} 1`,
		`fleet_scrape_up{worker="dead"} 0`,
		`fleet_rows_total{worker="alive"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("fleet exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, `{worker="dead"} 2`) {
		t.Errorf("dead worker contributed series:\n%s", text)
	}
}

func TestFederationTargetRemoval(t *testing.T) {
	fed := NewFederation(nil, nil)
	fed.SetTarget("w0", "http://example.invalid/metrics")
	fed.SetTarget("w0", "") // removal
	if len(fed.Targets()) != 0 {
		t.Fatalf("targets = %v, want empty", fed.Targets())
	}
}

func TestFederationHandler(t *testing.T) {
	worker := newWorkerMetricsServer(t, 9)
	fed := NewFederation(nil, nil)
	fed.SetTarget("w0", worker.URL+"/metrics")
	rr := httptest.NewRecorder()
	fed.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics/fleet", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), `fleet_rows_total{worker="w0"} 9`) {
		t.Errorf("handler body missing relabelled series:\n%s", rr.Body.String())
	}
}

// TestFederationDepartedWorkerNeverScraped: quarantined (or otherwise
// fenced-out) workers must not be hammered on every fleet scrape
// forever — Depart stops the scraping but pins the worker's
// fleet_scrape_up to 0 so the departure stays visible. Re-registering
// the target revives it: rejoining the fleet is rejoining the
// federation.
func TestFederationDepartedWorkerNeverScraped(t *testing.T) {
	var scrapes int32
	reg := NewRegistry()
	reg.Counter("fleet_rows_total", "rows completed").Add(7)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&scrapes, 1)
		Handler(reg, nil).ServeHTTP(w, r)
	}))
	defer srv.Close()

	fed := NewFederation(nil, nil)
	fed.SetTarget("liar", srv.URL+"/metrics")

	var buf bytes.Buffer
	if err := fed.WriteFleet(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&scrapes); got != 1 {
		t.Fatalf("pre-departure scrape count %d, want 1", got)
	}
	if !strings.Contains(buf.String(), `fleet_scrape_up{worker="liar"} 1`) {
		t.Fatalf("healthy worker should scrape up:\n%s", buf.String())
	}

	fed.Depart("liar")
	fed.Depart("never-registered") // unknown worker: a no-op, not a ghost series
	for i := 0; i < 3; i++ {
		buf.Reset()
		if err := fed.WriteFleet(context.Background(), &buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := atomic.LoadInt32(&scrapes); got != 1 {
		t.Fatalf("departed worker was scraped %d more times", got-1)
	}
	out := buf.String()
	if !strings.Contains(out, `fleet_scrape_up{worker="liar"} 0`) {
		t.Fatalf("departed worker should pin scrape_up to 0:\n%s", out)
	}
	if strings.Contains(out, `fleet_scrape_up{worker="never-registered"}`) {
		t.Fatalf("unregistered departure must not mint a series:\n%s", out)
	}
	if strings.Contains(out, `fleet_rows_total{worker="liar"}`) {
		t.Fatalf("departed worker's series should vanish from the page:\n%s", out)
	}

	// Rejoining revives scraping.
	fed.SetTarget("liar", srv.URL+"/metrics")
	buf.Reset()
	if err := fed.WriteFleet(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&scrapes); got != 2 {
		t.Fatalf("revived worker not scraped: %d total scrapes", got)
	}
	if !strings.Contains(buf.String(), `fleet_scrape_up{worker="liar"} 1`) {
		t.Fatalf("revived worker should scrape up again:\n%s", buf.String())
	}
	// And removal drops the series entirely, departed or not.
	fed.Depart("liar")
	fed.SetTarget("liar", "")
	buf.Reset()
	if err := fed.WriteFleet(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "liar") {
		t.Fatalf("removed worker still on the page:\n%s", buf.String())
	}
}
