// Package obs is the observability layer for long measurement
// campaigns: a metrics registry (atomic counters, gauges, bounded
// histograms with Prometheus-style text exposition), a span-based
// trace writer (JSONL, Chrome trace-event schema), and a throttled
// progress reporter — everything a weeks-long sweep needs to stop
// being a black box while it runs.
//
// The package depends only on the standard library and knows nothing
// about sweeps or kernels; internal/sweep and internal/fault attach
// meaning to the metric names and span categories they emit.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates exposition TYPE lines.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta via compare-and-swap.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Bounds are set at
// registration and never grow, so memory stays bounded no matter how
// many observations arrive; observations beyond the last bound land in
// the implicit +Inf bucket.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, excluding +Inf
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits accumulated via CAS
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤ ~20) and the branch
	// predictor does well on latency distributions.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile returns an estimate of quantile q in [0,1] by linear
// interpolation within the winning bucket — good enough for progress
// lines and trace summaries, not for billing.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen uint64
	lo := 0.0
	for i := range h.buckets {
		n := h.buckets[i].Load()
		hi := math.Inf(1)
		if i < len(h.bounds) {
			hi = h.bounds[i]
		}
		if float64(seen+n) >= rank {
			if n == 0 || math.IsInf(hi, 1) {
				return lo
			}
			frac := (rank - float64(seen)) / float64(n)
			return lo + frac*(hi-lo)
		}
		seen += n
		lo = hi
	}
	return lo
}

// DefBuckets is the default latency bucket ladder, in seconds —
// microseconds through tens of seconds, exponential-ish.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// series is one registered (name, labels) time series.
type series struct {
	name   string
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series of one metric name for exposition.
type family struct {
	name string
	help string
	kind metricKind
}

// Registry holds metric families and their series. All methods are
// safe for concurrent use; series registration is idempotent — asking
// for the same (name, labels) returns the same instance.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	series   map[string]*series
	order    []string // registration order of series keys
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: map[string]*family{},
		series:   map[string]*series{},
	}
}

func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// register returns the series for (name, labels), creating it (and its
// family) on first use. A name reused with a different kind panics:
// that is a programming error, not a runtime condition.
func (r *Registry) register(name, help string, kind metricKind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	key := seriesKey(name, labels)
	s, ok := r.series[key]
	if !ok {
		s = &series{name: name, labels: append([]Label(nil), labels...)}
		r.series[key] = s
		r.order = append(r.order, key)
	}
	return s
}

// Counter returns (registering on first use) the counter series for
// name and labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns (registering on first use) the gauge series for name
// and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns (registering on first use) the histogram series
// for name and labels. buckets is used only on first registration; nil
// means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.h == nil {
		if buckets == nil {
			buckets = DefBuckets
		}
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		s.h = &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
	}
	return s.h
}

// Sample is one exposed time-series value in a Snapshot.
type Sample struct {
	// Name is the metric family name.
	Name string
	// Labels are the series labels, in registration order.
	Labels []Label
	// Kind is "counter", "gauge" or "histogram".
	Kind string
	// Value holds the counter count or gauge level; for histograms it
	// is the observation count, with Sum carrying the value total.
	Value float64
	// Sum is the histogram sum (0 for counters and gauges).
	Sum float64
}

// Snapshot returns a point-in-time copy of every registered series,
// in registration order — the programmatic sibling of WriteText.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	ss := make([]*series, len(keys))
	fams := make([]*family, len(keys))
	for i, k := range keys {
		ss[i] = r.series[k]
		fams[i] = r.families[ss[i].name]
	}
	r.mu.Unlock()
	out := make([]Sample, 0, len(ss))
	for i, s := range ss {
		smp := Sample{Name: s.name, Labels: s.labels, Kind: fams[i].kind.String()}
		switch {
		case s.c != nil:
			smp.Value = float64(s.c.Value())
		case s.g != nil:
			smp.Value = s.g.Value()
		case s.h != nil:
			smp.Value = float64(s.h.Count())
			smp.Sum = s.h.Sum()
		}
		out = append(out, smp)
	}
	return out
}

// EscapeLabelValue escapes a label value for the Prometheus text
// exposition format: backslash, double-quote and newline become \\,
// \" and \n; everything else — tabs, arbitrary UTF-8 — passes through
// raw, exactly as the format specifies. Go's %q is NOT a substitute:
// it escapes tabs, control bytes and non-ASCII runes into Go syntax a
// Prometheus parser would read literally. Worker names and kernel IDs
// land in labels verbatim, so this is load-bearing, not cosmetic.
func EscapeLabelValue(v string) string {
	// Fast path: nothing to escape (the overwhelmingly common case).
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// labelString renders {k="v",...} or "" for an unlabelled series.
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Key + `="` + EscapeLabelValue(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers per family, then one
// line per series, histograms expanded into cumulative _bucket series
// plus _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	ss := make([]*series, len(keys))
	for i, k := range keys {
		ss[i] = r.series[k]
	}
	fams := map[string]*family{}
	for n, f := range r.families {
		fams[n] = f
	}
	r.mu.Unlock()

	seen := map[string]bool{}
	for _, s := range ss {
		f := fams[s.name]
		if !seen[s.name] {
			seen[s.name] = true
			if f.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
				return err
			}
		}
		switch {
		case s.c != nil:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", s.name, labelString(s.labels), s.c.Value()); err != nil {
				return err
			}
		case s.g != nil:
			if _, err := fmt.Fprintf(w, "%s%s %g\n", s.name, labelString(s.labels), s.g.Value()); err != nil {
				return err
			}
		case s.h != nil:
			var cum uint64
			for i := range s.h.buckets {
				cum += s.h.buckets[i].Load()
				le := "+Inf"
				if i < len(s.h.bounds) {
					le = fmt.Sprintf("%g", s.h.bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					s.name, labelString(s.labels, L("le", le)), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", s.name, labelString(s.labels), s.h.Sum()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.name, labelString(s.labels), s.h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}
