package obs

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry and progress reporter over HTTP:
//
//	GET /metrics   Prometheus text exposition of reg
//	GET /progress  JSON snapshot {done,total,percent,cells_per_sec,
//	               elapsed_seconds,eta_seconds,line}
//
// Either argument may be nil; the corresponding endpoint then answers
// 404. The handler is stdlib-only and safe to mount on any mux.
func Handler(reg *Registry, p *Progress) http.Handler {
	mux := http.NewServeMux()
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WriteText(w)
		})
	}
	if p != nil {
		mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
			s := p.Snapshot()
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{
				"done":            s.Done,
				"total":           s.Total,
				"percent":         s.Percent,
				"cells_per_sec":   s.Rate,
				"elapsed_seconds": s.Elapsed.Seconds(),
				"eta_seconds":     s.ETA.Seconds(),
				"line":            s.Line(),
			})
		})
	}
	return mux
}
