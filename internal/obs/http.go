package obs

import (
	"encoding/json"
	"net/http"
	"time"
)

// Handler serves the registry and progress reporter over HTTP:
//
//	GET /metrics   Prometheus text exposition of reg
//	GET /progress  JSON snapshot {done,total,percent,cells_per_sec,
//	               elapsed_seconds,eta_seconds,line}
//	GET /healthz   liveness probe: 200 "ok" while the process serves
//
// Either of reg and p may be nil; the corresponding endpoint then
// answers 404. /healthz is always mounted — a scraper that can reach
// the port deserves a cheap liveness answer even on a metrics-less
// server. The handler is stdlib-only and safe to mount on any mux.
func Handler(reg *Registry, p *Progress) http.Handler {
	mux := http.NewServeMux()
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WriteText(w)
		})
	}
	if p != nil {
		mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
			s := p.Snapshot()
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{
				"done":            s.Done,
				"total":           s.Total,
				"percent":         s.Percent,
				"cells_per_sec":   s.Rate,
				"elapsed_seconds": s.Elapsed.Seconds(),
				"eta_seconds":     s.ETA.Seconds(),
				"line":            s.Line(),
			})
		})
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}

// FlightHandler serves a flight recorder's current ring as a JSONL
// dump — the live sibling of the on-crash file dump, for operators
// (and `gpuscaled -flight-dump`) inspecting a healthy or wedged
// process without killing it.
func FlightHandler(fr *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = fr.WriteDump(w, "http")
	})
}

// Server wraps h in an http.Server with bounded read/write timeouts —
// the hardening every internet-adjacent listener needs so a stuck or
// malicious client cannot pin a connection (and its goroutine) forever.
// The sweep CLIs and the gpuscaled daemon all build their listeners
// through here; callers own Serve and Shutdown.
func Server(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}
