package obs

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Federation aggregates a fleet's metrics into one query surface: the
// coordinator scrapes every registered worker's /metrics (plus its own
// registry) and re-emits the union with a worker="<name>" label on
// every series, so one Prometheus scrape of /metrics/fleet sees the
// whole fleet without per-worker service discovery.
//
// Targets are registered dynamically — workers report their metrics
// URL on every lease acquire, so joining the fleet IS joining the
// federation and there is nothing to configure. Scrapes run
// concurrently with a bounded per-scrape timeout; an unreachable
// worker degrades to fleet_scrape_up{worker=...} 0 instead of failing
// the whole page (a dead worker is exactly when you want the rest).
type Federation struct {
	// SelfName labels the local registry's series; "coordinator" when
	// empty.
	SelfName string
	// Timeout bounds each scrape round; 2s when zero.
	Timeout time.Duration

	self   *Registry
	client *http.Client

	mu      sync.Mutex
	targets map[string]string // worker name -> metrics URL
	// departed marks workers fenced out of the fleet (quarantined, or
	// version-fenced and gone). A departed worker is never scraped
	// again — before this existed, the federation kept hammering a
	// dead/quarantined worker's URL on every fleet scrape forever —
	// but it stays on the page as fleet_scrape_up 0 so dashboards see
	// the departure instead of the series silently vanishing.
	departed map[string]bool
}

// NewFederation builds a federation over the local registry (may be
// nil) and an HTTP client (nil uses a default; chaos tests hand in a
// fault.WrapTransport-wrapped one).
func NewFederation(self *Registry, client *http.Client) *Federation {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return &Federation{self: self, client: client,
		targets: map[string]string{}, departed: map[string]bool{}}
}

// SetTarget registers (or refreshes) one worker's metrics URL. An
// empty URL removes the worker entirely. Registering a departed
// worker revives it — rejoining the fleet is rejoining the
// federation.
func (f *Federation) SetTarget(worker, url string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if url == "" {
		delete(f.targets, worker)
		delete(f.departed, worker)
		return
	}
	f.targets[worker] = url
	delete(f.departed, worker)
}

// Depart marks a worker as fenced out of the fleet: it is never
// scraped again, but its fleet_scrape_up series pins to 0 so the
// departure is visible. The hook gpuscaled wires to the coordinator's
// OnQuarantine.
func (f *Federation) Depart(worker string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.targets[worker]; !ok {
		return
	}
	f.departed[worker] = true
}

// Targets returns a copy of the registered worker -> URL map.
func (f *Federation) Targets() map[string]string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]string, len(f.targets))
	for k, v := range f.targets {
		out[k] = v
	}
	return out
}

// WriteFleet renders the federated exposition: the local registry
// first (labelled SelfName), then every target in worker-name order.
// Scrapes run concurrently; ctx bounds the whole round on top of the
// per-request Timeout.
func (f *Federation) WriteFleet(ctx context.Context, w io.Writer) error {
	timeout := f.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	type scrape struct {
		worker string
		body   []byte
		err    error
	}
	f.mu.Lock()
	targets := make(map[string]string, len(f.targets))
	departed := make(map[string]bool, len(f.departed))
	for k, v := range f.targets {
		targets[k] = v
	}
	for k := range f.departed {
		departed[k] = true
	}
	f.mu.Unlock()
	names := make([]string, 0, len(targets))
	for n := range targets {
		names = append(names, n)
	}
	sort.Strings(names)

	results := make([]scrape, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		if departed[name] {
			// Fenced out of the fleet: never scraped, pinned down.
			results[i] = scrape{worker: name, err: fmt.Errorf("departed")}
			continue
		}
		wg.Add(1)
		go func(i int, name, url string) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			results[i] = scrape{worker: name}
			req, err := http.NewRequestWithContext(sctx, http.MethodGet, url, nil)
			if err != nil {
				results[i].err = err
				return
			}
			resp, err := f.client.Do(req)
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				results[i].err = fmt.Errorf("status %d", resp.StatusCode)
				io.Copy(io.Discard, resp.Body)
				return
			}
			results[i].body, results[i].err = io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		}(i, name, targets[name])
	}
	wg.Wait()

	bw := bufio.NewWriter(w)
	seen := map[string]bool{} // family headers already emitted
	selfName := f.SelfName
	if selfName == "" {
		selfName = "coordinator"
	}
	if f.self != nil {
		var buf bytes.Buffer
		if err := f.self.WriteText(&buf); err != nil {
			return err
		}
		if err := relabelText(bw, &buf, L("worker", selfName), seen); err != nil {
			return err
		}
	}
	// Liveness of the scrape itself, one series per target.
	if len(names) > 0 {
		fmt.Fprintf(bw, "# HELP fleet_scrape_up whether the last federation scrape of this worker succeeded\n")
		fmt.Fprintf(bw, "# TYPE fleet_scrape_up gauge\n")
		for _, r := range results {
			up := 1
			if r.err != nil {
				up = 0
			}
			fmt.Fprintf(bw, "fleet_scrape_up{worker=\"%s\"} %d\n", EscapeLabelValue(r.worker), up)
		}
	}
	for _, r := range results {
		if r.err != nil {
			continue
		}
		if err := relabelText(bw, bytes.NewReader(r.body), L("worker", r.worker), seen); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler serves WriteFleet as /metrics/fleet. Scrape failures of
// individual workers are not errors; only a broken local writer is.
func (f *Federation) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = f.WriteFleet(r.Context(), w)
	})
}

// relabelText streams one Prometheus text exposition, injecting label
// into every series line and deduplicating # HELP / # TYPE headers
// across the federation (the same family arrives from every worker).
// The injection point is purely syntactic — right after the metric
// name, before any existing label set — so label VALUES containing
// braces or spaces (already escaped by the source) are never parsed.
func relabelText(w io.Writer, r io.Reader, label Label, seen map[string]bool) error {
	inject := label.Key + `="` + EscapeLabelValue(label.Value) + `"`
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// "# HELP name ..." / "# TYPE name kind": dedupe per (kind,
			// family). Unknown comment forms pass through once each.
			fields := strings.SplitN(line, " ", 4)
			key := line
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				key = fields[1] + " " + fields[2]
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
			continue
		}
		// A series line: `name value`, `name{labels} value`. The metric
		// name ends at the first '{' or space; nothing before it can be
		// quoted or escaped.
		brace := strings.IndexByte(line, '{')
		space := strings.IndexByte(line, ' ')
		var out string
		switch {
		case brace >= 0 && (space < 0 || brace < space):
			rest := line[brace+1:]
			if strings.HasPrefix(rest, "}") {
				out = line[:brace] + "{" + inject + rest
			} else {
				out = line[:brace] + "{" + inject + "," + rest
			}
		case space >= 0:
			out = line[:space] + "{" + inject + "}" + line[space:]
		default:
			// No value at all — not a well-formed series; pass through.
			out = line
		}
		if _, err := fmt.Fprintln(w, out); err != nil {
			return err
		}
	}
	return sc.Err()
}
