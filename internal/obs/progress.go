package obs

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// Progress tracks completion of a fixed-size campaign and renders a
// throttled cells-per-second / ETA line. Done is supplied as a
// function so the reporter reads live registry counters instead of
// duplicating state; everything else is derived.
type Progress struct {
	// Interval is the minimum gap between MaybeEmit lines; 0 means
	// every call emits (useful in tests).
	Interval time.Duration

	done func() uint64
	now  func() time.Time // clock seam; tests inject misbehaving clocks

	mu    sync.Mutex
	total uint64
	start time.Time
	last  time.Time
}

// NewProgress returns a reporter whose completion count comes from
// done. Call SetTotal before the campaign starts; the clock starts
// there.
func NewProgress(done func() uint64) *Progress {
	return &Progress{Interval: time.Second, done: done, now: time.Now}
}

// SetTotal fixes the campaign size and (re)starts the rate clock.
func (p *Progress) SetTotal(n uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total = n
	p.start = p.now()
	p.last = time.Time{}
}

// Snapshot is one point-in-time progress reading.
type Snapshot struct {
	// Done and Total count campaign cells.
	Done, Total uint64
	// Percent is 100*Done/Total (0 when Total is 0).
	Percent float64
	// Rate is cells per second since SetTotal.
	Rate float64
	// Elapsed is the time since SetTotal.
	Elapsed time.Duration
	// ETA estimates the remaining time at the current rate; 0 when
	// the rate is still 0 or the campaign is finished.
	ETA time.Duration
}

// Snapshot returns the current reading. Every derived field is
// guarded against the degenerate inputs long campaigns actually hit —
// zero-cell sweeps (total 0), counters racing past the total, and
// non-monotonic clock readings — so /progress never serves ±Inf or
// NaN (which would also make its JSON encoding fail outright).
func (p *Progress) Snapshot() Snapshot {
	p.mu.Lock()
	total, start := p.total, p.start
	p.mu.Unlock()
	s := Snapshot{Done: p.done(), Total: total}
	if start.IsZero() {
		return s
	}
	s.Elapsed = p.now().Sub(start)
	if s.Elapsed < 0 {
		// A clock that stepped backwards (or a seeded fake) must not
		// produce negative rates or ETAs.
		s.Elapsed = 0
	}
	if total > 0 {
		s.Percent = 100 * float64(s.Done) / float64(total)
		if s.Percent > 100 {
			// Done can transiently outrun Total when skipped cells are
			// counted before SetTotal lands; clamp instead of lying.
			s.Percent = 100
		}
	}
	if secs := s.Elapsed.Seconds(); secs > 0 {
		s.Rate = float64(s.Done) / secs
	}
	if s.Rate > 0 && s.Done < total {
		eta := float64(total-s.Done) / s.Rate * float64(time.Second)
		if eta > float64(math.MaxInt64) {
			// A near-zero rate over a huge grid overflows Duration into
			// garbage (negative); saturate instead.
			s.ETA = time.Duration(math.MaxInt64)
		} else {
			s.ETA = time.Duration(eta)
		}
	}
	return s
}

// Line renders the snapshot as one human-readable progress line.
func (s Snapshot) Line() string {
	eta := "--"
	if s.ETA > 0 {
		eta = s.ETA.Round(100 * time.Millisecond).String()
	}
	return fmt.Sprintf("progress: %d/%d cells (%.1f%%) · %.0f cells/s · ETA %s",
		s.Done, s.Total, s.Percent, s.Rate, eta)
}

// Line renders the current progress line.
func (p *Progress) Line() string { return p.Snapshot().Line() }

// MaybeEmit writes the progress line to w if at least Interval has
// passed since the previous emission (or none has happened yet). It
// reports whether a line was written.
func (p *Progress) MaybeEmit(w io.Writer) bool {
	p.mu.Lock()
	now := p.now()
	if !p.last.IsZero() && now.Sub(p.last) < p.Interval {
		p.mu.Unlock()
		return false
	}
	p.last = now
	p.mu.Unlock()
	fmt.Fprintln(w, p.Line())
	return true
}

// Emit writes the progress line unconditionally — the final line of a
// campaign should never be throttled away.
func (p *Progress) Emit(w io.Writer) {
	p.mu.Lock()
	p.last = p.now()
	p.mu.Unlock()
	fmt.Fprintln(w, p.Line())
}
