package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "total requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same (name, labels) returns the same series.
	if r.Counter("requests_total", "") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Add(-1.5)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", g.Value())
	}
}

func TestLabelledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	ok := r.Counter("cells_total", "cells", L("status", "ok"))
	bad := r.Counter("cells_total", "cells", L("status", "failed"))
	if ok == bad {
		t.Fatal("different labels returned the same series")
	}
	ok.Add(3)
	bad.Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE cells_total counter",
		`cells_total{status="ok"} 3`,
		`cells_total{status="failed"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// The family header must appear exactly once.
	if n := strings.Count(text, "# TYPE cells_total"); n != 1 {
		t.Errorf("TYPE line appears %d times, want 1", n)
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "cell latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5.555) > 1e-9 {
		t.Fatalf("sum = %g, want 5.555", got)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		"latency_seconds_count 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "", []float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	p50 := h.Quantile(0.5)
	if p50 < 1 || p50 > 2 {
		t.Fatalf("p50 = %g, want within (1,2]", p50)
	}
	if h.Quantile(0) > 1 {
		t.Fatalf("p0 = %g, want <= 1", h.Quantile(0))
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestSnapshotOrderAndValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.Gauge("b", "").Set(7)
	r.Histogram("c_seconds", "", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d samples, want 3", len(snap))
	}
	if snap[0].Name != "a_total" || snap[0].Value != 2 || snap[0].Kind != "counter" {
		t.Errorf("sample 0 = %+v", snap[0])
	}
	if snap[1].Name != "b" || snap[1].Value != 7 || snap[1].Kind != "gauge" {
		t.Errorf("sample 1 = %+v", snap[1])
	}
	if snap[2].Name != "c_seconds" || snap[2].Value != 1 || snap[2].Sum != 0.5 {
		t.Errorf("sample 2 = %+v", snap[2])
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "")
	r.Gauge("x", "")
}

func TestConcurrentUseIsRaceFree(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("hits_total", "", L("w", "a")).Inc()
				r.Gauge("level", "").Add(1)
				r.Histogram("lat", "", nil).Observe(0.001)
			}
		}()
	}
	var b strings.Builder
	for i := 0; i < 20; i++ {
		b.Reset()
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		r.Snapshot()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "", L("w", "a")).Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`say "hi"`, `say \"hi\"`},
		{"line\nbreak", `line\nbreak`},
		{"tab\there", "tab\there"}, // raw tab passes through
		{"ünïcode→", "ünïcode→"},   // raw UTF-8 passes through
		{`all"three\of` + "\nthem", `all\"three\\of\nthem`},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWriteTextEscapesLabelValues(t *testing.T) {
	reg := NewRegistry()
	// Worker names and kernel IDs are used as labels and can carry
	// anything: quotes, backslashes, newlines, unicode.
	reg.Counter("fleet_rows_total", "rows", L("worker", "w\"0\\host\nx"), L("kernel", "ünïcode")).Add(3)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `fleet_rows_total{worker="w\"0\\host\nx",kernel="ünïcode"} 3` + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing escaped series line %q:\n%s", want, out)
	}
	// Exactly one physical line per series: a raw newline in a label
	// value would split it.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("exposition contains an empty line (torn series?):\n%s", out)
		}
	}
}
