package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestProgressSnapshotAndLine(t *testing.T) {
	var done atomic.Uint64
	p := NewProgress(done.Load)
	p.SetTotal(100)
	done.Store(25)
	s := p.Snapshot()
	if s.Done != 25 || s.Total != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Percent != 25 {
		t.Fatalf("percent = %g, want 25", s.Percent)
	}
	if s.Rate <= 0 {
		t.Fatalf("rate = %g, want > 0", s.Rate)
	}
	if s.ETA <= 0 {
		t.Fatalf("ETA = %v, want > 0 while incomplete", s.ETA)
	}
	line := s.Line()
	if !strings.Contains(line, "25/100") || !strings.Contains(line, "cells/s") {
		t.Fatalf("line = %q", line)
	}
	// Finished campaigns stop showing an ETA.
	done.Store(100)
	if eta := p.Snapshot().ETA; eta != 0 {
		t.Fatalf("ETA after completion = %v, want 0", eta)
	}
}

func TestProgressThrottle(t *testing.T) {
	var done atomic.Uint64
	p := NewProgress(done.Load)
	p.SetTotal(10)
	p.Interval = time.Hour
	var b strings.Builder
	if !p.MaybeEmit(&b) {
		t.Fatal("first emit throttled")
	}
	if p.MaybeEmit(&b) {
		t.Fatal("second emit not throttled")
	}
	p.Emit(&b) // unconditional
	if lines := strings.Count(b.String(), "\n"); lines != 2 {
		t.Fatalf("emitted %d lines, want 2", lines)
	}
	// Interval 0 never throttles.
	p.Interval = 0
	if !p.MaybeEmit(&b) {
		t.Fatal("zero interval throttled")
	}
}

func TestHandlerServesMetricsAndProgress(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sweep_retries_total", "retries").Add(7)
	var done atomic.Uint64
	done.Store(3)
	p := NewProgress(done.Load)
	p.SetTotal(9)

	srv := httptest.NewServer(Handler(reg, p))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "sweep_retries_total 7") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	res, err = srv.Client().Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var got map[string]any
	if err := json.NewDecoder(res.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["done"] != float64(3) || got["total"] != float64(9) {
		t.Fatalf("/progress = %v", got)
	}
	if _, ok := got["eta_seconds"]; !ok {
		t.Fatal("/progress missing eta_seconds")
	}
}
