package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestProgressSnapshotAndLine(t *testing.T) {
	var done atomic.Uint64
	p := NewProgress(done.Load)
	p.SetTotal(100)
	done.Store(25)
	s := p.Snapshot()
	if s.Done != 25 || s.Total != 100 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Percent != 25 {
		t.Fatalf("percent = %g, want 25", s.Percent)
	}
	if s.Rate <= 0 {
		t.Fatalf("rate = %g, want > 0", s.Rate)
	}
	if s.ETA <= 0 {
		t.Fatalf("ETA = %v, want > 0 while incomplete", s.ETA)
	}
	line := s.Line()
	if !strings.Contains(line, "25/100") || !strings.Contains(line, "cells/s") {
		t.Fatalf("line = %q", line)
	}
	// Finished campaigns stop showing an ETA.
	done.Store(100)
	if eta := p.Snapshot().ETA; eta != 0 {
		t.Fatalf("ETA after completion = %v, want 0", eta)
	}
}

func TestProgressThrottle(t *testing.T) {
	var done atomic.Uint64
	p := NewProgress(done.Load)
	p.SetTotal(10)
	p.Interval = time.Hour
	var b strings.Builder
	if !p.MaybeEmit(&b) {
		t.Fatal("first emit throttled")
	}
	if p.MaybeEmit(&b) {
		t.Fatal("second emit not throttled")
	}
	p.Emit(&b) // unconditional
	if lines := strings.Count(b.String(), "\n"); lines != 2 {
		t.Fatalf("emitted %d lines, want 2", lines)
	}
	// Interval 0 never throttles.
	p.Interval = 0
	if !p.MaybeEmit(&b) {
		t.Fatal("zero interval throttled")
	}
}

func TestHandlerServesMetricsAndProgress(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sweep_retries_total", "retries").Add(7)
	var done atomic.Uint64
	done.Store(3)
	p := NewProgress(done.Load)
	p.SetTotal(9)

	srv := httptest.NewServer(Handler(reg, p))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "sweep_retries_total 7") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	res, err = srv.Client().Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var got map[string]any
	if err := json.NewDecoder(res.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["done"] != float64(3) || got["total"] != float64(9) {
		t.Fatalf("/progress = %v", got)
	}
	if _, ok := got["eta_seconds"]; !ok {
		t.Fatal("/progress missing eta_seconds")
	}
}

// finite asserts a float is neither NaN nor ±Inf.
func finite(t *testing.T, name string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("%s = %v, want finite", name, v)
	}
}

// TestProgressDegenerateInputs is the regression test for the ETA
// math: zero-cell sweeps, done outrunning total, and non-monotonic
// clocks must never surface ±Inf or NaN in a snapshot (or break the
// /progress JSON, which rejects those values outright).
func TestProgressDegenerateInputs(t *testing.T) {
	t.Run("zero cell sweep", func(t *testing.T) {
		var done atomic.Uint64
		p := NewProgress(done.Load)
		p.SetTotal(0)
		s := p.Snapshot()
		finite(t, "Percent", s.Percent)
		finite(t, "Rate", s.Rate)
		if s.Percent != 0 || s.ETA != 0 {
			t.Fatalf("zero-cell snapshot = %+v, want zero percent and ETA", s)
		}
		if !strings.Contains(s.Line(), "0/0") {
			t.Fatalf("zero-cell line = %q", s.Line())
		}
	})
	t.Run("done outruns total", func(t *testing.T) {
		var done atomic.Uint64
		p := NewProgress(done.Load)
		p.SetTotal(10)
		done.Store(15) // skipped-cell accounting can transiently overshoot
		s := p.Snapshot()
		if s.Percent != 100 {
			t.Fatalf("overshoot percent = %v, want clamped 100", s.Percent)
		}
		if s.ETA != 0 {
			t.Fatalf("overshoot ETA = %v, want 0 (no uint64 underflow)", s.ETA)
		}
		finite(t, "Rate", s.Rate)
	})
	t.Run("clock steps backwards", func(t *testing.T) {
		var done atomic.Uint64
		p := NewProgress(done.Load)
		now := time.Now()
		p.now = func() time.Time { return now }
		p.SetTotal(100)
		done.Store(50)
		p.now = func() time.Time { return now.Add(-3 * time.Second) }
		s := p.Snapshot()
		if s.Elapsed < 0 {
			t.Fatalf("negative elapsed %v leaked", s.Elapsed)
		}
		if s.Rate < 0 || s.ETA < 0 {
			t.Fatalf("backwards clock produced rate %v eta %v", s.Rate, s.ETA)
		}
		finite(t, "Rate", s.Rate)
		finite(t, "Percent", s.Percent)
	})
	t.Run("vanishing rate saturates eta", func(t *testing.T) {
		var done atomic.Uint64
		p := NewProgress(done.Load)
		now := time.Now()
		p.now = func() time.Time { return now }
		p.SetTotal(math.MaxUint64)
		done.Store(1)
		p.now = func() time.Time { return now.Add(500 * 24 * time.Hour) }
		s := p.Snapshot()
		if s.ETA < 0 {
			t.Fatalf("huge remaining work overflowed ETA to %v", s.ETA)
		}
		finite(t, "Percent", s.Percent)
	})
	t.Run("progress json stays encodable", func(t *testing.T) {
		var done atomic.Uint64
		p := NewProgress(done.Load)
		p.SetTotal(0)
		rr := httptest.NewRecorder()
		Handler(nil, p).ServeHTTP(rr, httptest.NewRequest("GET", "/progress", nil))
		if rr.Code != 200 {
			t.Fatalf("/progress = %d", rr.Code)
		}
		var out map[string]any
		if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
			t.Fatalf("/progress body not JSON (NaN/Inf leak?): %v\n%s", err, rr.Body.String())
		}
		for k, v := range out {
			if f, ok := v.(float64); ok {
				finite(t, "/progress "+k, f)
			}
		}
	})
}
