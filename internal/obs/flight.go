package obs

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// FlightRecorder is the crash flight recorder: a fixed-size ring of
// recent structured control-plane events (lease transitions, retries,
// breaker trips, shed decisions) that answers "what was this process
// doing just before it died?" — the question journals (state-only)
// cannot, because they record what was durably decided, not what was
// in flight.
//
// Two backings share one API:
//
//   - In-memory (NewFlightRecorder): events live in the ring until
//     someone dumps them — on panic, on SIGQUIT, or over HTTP.
//   - File-backed (OpenFlightRecorder): every Record also overwrites
//     one fixed-size CRC-framed slot in a preallocated file via
//     pwrite, with no fsync. The kernel's page cache makes the slots
//     survive kill -9 — the process dies, the dirty pages don't —
//     which is exactly the black-box semantics the name promises.
//     Only machine loss loses the ring. A torn slot (kill mid-pwrite)
//     fails its CRC and is skipped at recovery, like journal v2's
//     torn tail.
//
// Record is mutex-serialized and does one small JSON encode plus (for
// the file backing) one pwrite; events are control-plane-rate (leases,
// sheds, retries), never per-cell, so this stays far off the sweep
// hot path.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []FlightEvent
	next uint64 // total events ever recorded; ring index = (next-1) % len

	f        *os.File // nil for the in-memory backing
	slotSize int
	buf      []byte // reusable pwrite buffer, len slotSize
}

// FlightEvent is one recorded moment.
type FlightEvent struct {
	// Seq is the global sequence number (1-based); recovery orders by
	// it.
	Seq uint64 `json:"seq"`
	// TimeNS is the wall-clock time of the event in Unix nanoseconds.
	// Wall, not monotonic: dumps are read by humans correlating
	// processes, and the ring survives the process whose monotonic
	// clock defined it.
	TimeNS int64 `json:"t"`
	// Kind classifies the event ("lease", "steal", "complete", "fence",
	// "shed", "retry", "breaker", ...).
	Kind string `json:"kind"`
	// Args carries the event payload (job, row, epoch, worker, ...).
	Args map[string]any `json:"args,omitempty"`
}

// Flight-file layout: a 24-byte header, then slotCount slots of
// slotSize bytes. Each slot: u64 seq, u32 payload length, u32
// CRC32(payload), payload (JSON FlightEvent). All little-endian.
const (
	flightMagic      = "GPUFLT01"
	flightHeaderSize = 24
	flightSlotHeader = 16
	// DefaultFlightSlots and DefaultFlightSlotSize size the ring when
	// callers pass zero: 512 events x 1KiB = a 512KiB black box.
	DefaultFlightSlots    = 512
	DefaultFlightSlotSize = 1024
)

// NewFlightRecorder returns an in-memory recorder holding the last
// `slots` events (DefaultFlightSlots when <= 0).
func NewFlightRecorder(slots int) *FlightRecorder {
	if slots <= 0 {
		slots = DefaultFlightSlots
	}
	return &FlightRecorder{ring: make([]FlightEvent, slots)}
}

// OpenFlightRecorder returns a file-backed recorder at path,
// truncating any previous ring there (recover it first with
// ReadFlightFile if it matters). slots/slotSize <= 0 use the
// defaults. The file is fully preallocated so a Record never needs to
// grow it.
func OpenFlightRecorder(path string, slots, slotSize int) (*FlightRecorder, error) {
	if slots <= 0 {
		slots = DefaultFlightSlots
	}
	if slotSize <= 0 {
		slotSize = DefaultFlightSlotSize
	}
	if slotSize < flightSlotHeader+2 {
		return nil, fmt.Errorf("obs: flight slot size %d too small", slotSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: opening flight file: %w", err)
	}
	hdr := make([]byte, flightHeaderSize)
	copy(hdr, flightMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(slotSize))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(slots))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: writing flight header: %w", err)
	}
	if err := f.Truncate(int64(flightHeaderSize + slots*slotSize)); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: sizing flight file: %w", err)
	}
	return &FlightRecorder{
		ring: make([]FlightEvent, slots),
		f:    f, slotSize: slotSize, buf: make([]byte, slotSize),
	}, nil
}

// Record appends one event to the ring (and its file slot, when
// file-backed). Safe for concurrent use; never fails — a write error
// on the file backing degrades that slot to its CRC check, it does
// not lose the in-memory copy.
func (fr *FlightRecorder) Record(kind string, args map[string]any) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.next++
	ev := FlightEvent{Seq: fr.next, TimeNS: time.Now().UnixNano(), Kind: kind, Args: args}
	fr.ring[int((fr.next-1)%uint64(len(fr.ring)))] = ev
	if fr.f == nil {
		return
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		return
	}
	if len(payload) > fr.slotSize-flightSlotHeader {
		payload = payload[:fr.slotSize-flightSlotHeader] // oversized events degrade to torn slots
	}
	for i := range fr.buf {
		fr.buf[i] = 0
	}
	binary.LittleEndian.PutUint64(fr.buf[0:], ev.Seq)
	binary.LittleEndian.PutUint32(fr.buf[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(fr.buf[12:], crc32.ChecksumIEEE(payload))
	copy(fr.buf[flightSlotHeader:], payload)
	off := int64(flightHeaderSize + int((ev.Seq-1)%uint64(len(fr.ring)))*fr.slotSize)
	// Deliberately no fsync: the page cache IS the durability model.
	fr.f.WriteAt(fr.buf, off)
}

// Events returns the ring's current contents, oldest first.
func (fr *FlightRecorder) Events() []FlightEvent {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	n := fr.next
	cap64 := uint64(len(fr.ring))
	count := n
	if count > cap64 {
		count = cap64
	}
	out := make([]FlightEvent, 0, count)
	for i := uint64(0); i < count; i++ {
		seq := n - count + i + 1
		out = append(out, fr.ring[int((seq-1)%cap64)])
	}
	return out
}

// Recorded returns the total number of events ever recorded.
func (fr *FlightRecorder) Recorded() uint64 {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.next
}

// WriteDump renders the ring as JSONL, oldest first, prefixed with
// one header object ({"flight_dump":...}) identifying the dump.
func (fr *FlightRecorder) WriteDump(w io.Writer, reason string) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(map[string]any{
		"flight_dump": reason,
		"pid":         os.Getpid(),
		"t":           time.Now().UnixNano(),
	}); err != nil {
		return err
	}
	for _, ev := range fr.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DumpToFile writes a dump to path (atomically enough for a crash
// handler: create, write, sync, close).
func (fr *FlightRecorder) DumpToFile(path, reason string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fr.WriteDump(f, reason); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Close closes the file backing, if any. The on-disk ring remains
// readable via ReadFlightFile.
func (fr *FlightRecorder) Close() error {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if fr.f == nil {
		return nil
	}
	err := fr.f.Close()
	fr.f = nil
	return err
}

// ReadFlightFile recovers the events a file-backed recorder left
// behind — typically after the process was kill -9'd. Slots that are
// empty, torn (CRC mismatch) or out of range are skipped; survivors
// are returned oldest first.
func ReadFlightFile(path string) ([]FlightEvent, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < flightHeaderSize || string(b[:8]) != flightMagic {
		return nil, fmt.Errorf("obs: %s is not a flight file", path)
	}
	slotSize := int(binary.LittleEndian.Uint32(b[8:]))
	slots := int(binary.LittleEndian.Uint32(b[12:]))
	if slotSize < flightSlotHeader+2 || slots <= 0 || slots > 1<<20 {
		return nil, fmt.Errorf("obs: %s has an implausible flight geometry (%d x %d)", path, slots, slotSize)
	}
	var out []FlightEvent
	for i := 0; i < slots; i++ {
		off := flightHeaderSize + i*slotSize
		if off+flightSlotHeader > len(b) {
			break
		}
		slot := b[off:min(off+slotSize, len(b))]
		seq := binary.LittleEndian.Uint64(slot[0:])
		n := int(binary.LittleEndian.Uint32(slot[8:]))
		crc := binary.LittleEndian.Uint32(slot[12:])
		if seq == 0 || n <= 0 || n > len(slot)-flightSlotHeader {
			continue
		}
		payload := slot[flightSlotHeader : flightSlotHeader+n]
		if crc32.ChecksumIEEE(payload) != crc {
			continue // torn slot: the kill landed mid-pwrite
		}
		var ev FlightEvent
		if err := json.Unmarshal(payload, &ev); err != nil || ev.Seq != seq {
			continue
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// ReadFlightDump parses a WriteDump stream back into events, skipping
// the header object.
func ReadFlightDump(r io.Reader) ([]FlightEvent, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []FlightEvent
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		if line == 1 {
			var hdr map[string]any
			if err := json.Unmarshal(b, &hdr); err == nil {
				if _, ok := hdr["flight_dump"]; ok {
					continue
				}
			}
		}
		var ev FlightEvent
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: flight dump line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
