package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	start := time.Now()
	tw.Complete("cell", "sweep", 3, start, 42*time.Microsecond,
		map[string]any{"kernel": "k1", "attempts": 2.0})
	tw.Instant("fault", "fault", 3, map[string]any{"kind": "error"})
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Every line is standalone JSON (the JSONL contract).
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	for i, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
	}

	evs, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("read %d events, want 2", len(evs))
	}
	cell := evs[0]
	if cell.Name != "cell" || cell.Phase != "X" || cell.TID != 3 {
		t.Errorf("cell event = %+v", cell)
	}
	if cell.Dur != 42 {
		t.Errorf("cell dur = %g us, want 42", cell.Dur)
	}
	if cell.Args["kernel"] != "k1" {
		t.Errorf("cell args = %v", cell.Args)
	}
	if evs[1].Phase != "i" || evs[1].Args["kind"] != "error" {
		t.Errorf("instant event = %+v", evs[1])
	}
}

func TestReadEventsRejectsGarbageWithLineNumber(t *testing.T) {
	_, err := ReadEvents(strings.NewReader("{\"name\":\"ok\",\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0}\nnot json\n"))
	var pe *TraceParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want TraceParseError", err)
	}
	if pe.Line != 2 {
		t.Fatalf("bad line reported as %d, want 2", pe.Line)
	}
}

func TestTraceWriterStickyError(t *testing.T) {
	tw := NewTraceWriter(failWriter{})
	for i := 0; i < 100; i++ {
		tw.Instant("x", "", 0, nil)
	}
	if tw.Flush() == nil {
		t.Fatal("write error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestTraceWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tw.Complete("cell", "sweep", int64(w), time.Now(), time.Microsecond, nil)
			}
		}(w)
	}
	wg.Wait()
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("interleaved writes corrupted the stream: %v", err)
	}
	if len(evs) != 8*200 {
		t.Fatalf("read %d events, want %d", len(evs), 8*200)
	}
}

// TestTraceWriterConcurrentSpansComplete is the stronger concurrency
// contract: N goroutines emitting distinct, identifiable span events
// through one writer must yield a stream that parses line-by-line AND
// contains every event exactly once with its payload intact — a torn
// or interleaved line would either fail to parse or merge/lose
// payloads. Run under -race via `make check`.
func TestTraceWriterConcurrentSpansComplete(t *testing.T) {
	const goroutines, perG = 16, 150
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.SetProcess("test-proc")
	scs := make([]SpanContext, goroutines)
	for w := range scs {
		scs[w] = NewSpanContext()
	}
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				args := map[string]any{"g": w, "i": i}
				switch i % 3 {
				case 0:
					tw.CompleteSpan("cell", "sweep", int64(w), scs[w].Child(), scs[w].SpanID,
						time.Now(), time.Microsecond, args)
				case 1:
					tw.InstantSpan("fault", "fault", int64(w), scs[w], "", args)
				default:
					tw.Complete("cell", "sweep", int64(w), time.Now(), time.Microsecond, args)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("concurrent span writes corrupted the stream: %v", err)
	}
	if len(evs) != goroutines*perG {
		t.Fatalf("read %d events, want %d", len(evs), goroutines*perG)
	}
	seen := make([][]bool, goroutines)
	for i := range seen {
		seen[i] = make([]bool, perG)
	}
	for _, e := range evs {
		if e.Proc != "test-proc" {
			t.Fatalf("event lost its process stamp: %+v", e)
		}
		g := int(e.Args["g"].(float64))
		i := int(e.Args["i"].(float64))
		if seen[g][i] {
			t.Fatalf("event g=%d i=%d appeared twice", g, i)
		}
		seen[g][i] = true
		if i%3 == 0 {
			if e.Trace != scs[g].TraceID || e.Parent != scs[g].SpanID || !e.SpanContext().Valid() {
				t.Fatalf("span identity mangled: %+v (want trace %s parent %s)", e, scs[g].TraceID, scs[g].SpanID)
			}
		}
	}
	for g := range seen {
		for i, ok := range seen[g] {
			if !ok {
				t.Fatalf("event g=%d i=%d missing from the stream", g, i)
			}
		}
	}
}

func TestTraceSpanFieldsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	sc := NewSpanContext()
	tw.CompleteSpan("job", "serve", 0, sc, "feedbeefcafe0001", time.Now(), time.Millisecond, nil)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(&buf)
	if err != nil || len(evs) != 1 {
		t.Fatalf("ReadEvents = %v, %d events", err, len(evs))
	}
	e := evs[0]
	if e.Trace != sc.TraceID || e.Span != sc.SpanID || e.Parent != "feedbeefcafe0001" {
		t.Fatalf("span fields did not round-trip: %+v", e)
	}
}
