package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	start := time.Now()
	tw.Complete("cell", "sweep", 3, start, 42*time.Microsecond,
		map[string]any{"kernel": "k1", "attempts": 2.0})
	tw.Instant("fault", "fault", 3, map[string]any{"kind": "error"})
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Every line is standalone JSON (the JSONL contract).
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	for i, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
	}

	evs, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("read %d events, want 2", len(evs))
	}
	cell := evs[0]
	if cell.Name != "cell" || cell.Phase != "X" || cell.TID != 3 {
		t.Errorf("cell event = %+v", cell)
	}
	if cell.Dur != 42 {
		t.Errorf("cell dur = %g us, want 42", cell.Dur)
	}
	if cell.Args["kernel"] != "k1" {
		t.Errorf("cell args = %v", cell.Args)
	}
	if evs[1].Phase != "i" || evs[1].Args["kind"] != "error" {
		t.Errorf("instant event = %+v", evs[1])
	}
}

func TestReadEventsRejectsGarbageWithLineNumber(t *testing.T) {
	_, err := ReadEvents(strings.NewReader("{\"name\":\"ok\",\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0}\nnot json\n"))
	var pe *TraceParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want TraceParseError", err)
	}
	if pe.Line != 2 {
		t.Fatalf("bad line reported as %d, want 2", pe.Line)
	}
}

func TestTraceWriterStickyError(t *testing.T) {
	tw := NewTraceWriter(failWriter{})
	for i := 0; i < 100; i++ {
		tw.Instant("x", "", 0, nil)
	}
	if tw.Flush() == nil {
		t.Fatal("write error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestTraceWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tw.Complete("cell", "sweep", int64(w), time.Now(), time.Microsecond, nil)
			}
		}(w)
	}
	wg.Wait()
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("interleaved writes corrupted the stream: %v", err)
	}
	if len(evs) != 8*200 {
		t.Fatalf("read %d events, want %d", len(evs), 8*200)
	}
}
