package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHandlerHealthz(t *testing.T) {
	// /healthz answers even with no registry or progress attached.
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK || string(b) != "ok\n" {
		t.Fatalf("/healthz = %d %q, want 200 \"ok\"", res.StatusCode, b)
	}
	for _, path := range []string{"/metrics", "/progress"} {
		res, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusNotFound {
			t.Fatalf("%s on a nil-backed handler = %d, want 404", path, res.StatusCode)
		}
	}
}

func TestServerHasBoundedTimeouts(t *testing.T) {
	srv := Server(Handler(NewRegistry(), nil))
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 {
		t.Fatalf("server timeouts unbounded: header=%v read=%v write=%v",
			srv.ReadHeaderTimeout, srv.ReadTimeout, srv.WriteTimeout)
	}
}
