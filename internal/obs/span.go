package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
)

// Distributed trace identity, W3C Trace Context style. A trace is one
// logical operation — a sweep job — however many processes execute
// pieces of it; a span is one timed piece (the job run, a lease, a
// row, a cell). Identity travels between processes as a `traceparent`
// header (https://www.w3.org/TR/trace-context/):
//
//	traceparent: 00-<32 hex trace-id>-<16 hex span-id>-01
//
// The coordinator mints the trace ID when a job is admitted, every
// lease carries it plus the lease's own span ID, and workers stamp
// their row and cell spans with the same trace ID and the lease span
// as parent — so one job submission yields a single stitched trace
// across the whole fleet (see cmd/sweeptrace).

// SpanContext identifies one span within one trace. The zero value is
// "not traced"; both IDs are lower-case hex strings (32 and 16 chars).
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the context carries a usable identity: a
// well-formed, non-zero trace ID and span ID.
func (sc SpanContext) Valid() bool {
	return validHexID(sc.TraceID, 32) && validHexID(sc.SpanID, 16)
}

// Child returns a new span context in the same trace with a fresh
// span ID — the caller's span becomes the child's parent by stamping
// the parent's SpanID into the child span's Parent field.
func (sc SpanContext) Child() SpanContext {
	return SpanContext{TraceID: sc.TraceID, SpanID: NewSpanID()}
}

// validHexID reports whether s is n lower-case hex chars, not all
// zero (the W3C formats reserve the all-zero IDs as invalid).
func validHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < n; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

// NewTraceID mints a random 32-hex-char trace ID.
func NewTraceID() string { return randHex(16) }

// NewSpanID mints a random 16-hex-char span ID.
func NewSpanID() string { return randHex(8) }

// NewSpanContext mints a fresh trace root: new trace ID, new span ID.
func NewSpanContext() SpanContext {
	return SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
}

// randHex returns 2n random lower-case hex chars. crypto/rand never
// fails on the supported platforms; if it somehow does, a panic is
// more honest than colliding trace IDs.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("obs: reading random trace id: %v", err))
	}
	return hex.EncodeToString(b)
}

// TraceparentHeader is the W3C Trace Context propagation header name.
const TraceparentHeader = "traceparent"

// Traceparent renders the context in W3C form (version 00, sampled).
// Invalid contexts render as "" so callers can propagate blindly.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent parses a W3C traceparent value. Unknown versions
// are accepted as long as the trace-id/span-id fields parse — the
// spec's forward-compatibility rule — but the all-zero IDs and
// malformed fields are rejected.
func ParseTraceparent(s string) (SpanContext, error) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: want version-traceid-spanid-flags", s)
	}
	if len(parts[0]) != 2 || parts[0] == "ff" {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: bad version %q", s, parts[0])
	}
	sc := SpanContext{TraceID: parts[1], SpanID: parts[2]}
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: invalid trace or span id", s)
	}
	return sc, nil
}

// Inject stamps the context into an outgoing header set; invalid
// contexts stamp nothing.
func (sc SpanContext) Inject(h http.Header) {
	if tp := sc.Traceparent(); tp != "" {
		h.Set(TraceparentHeader, tp)
	}
}

// ExtractSpanContext reads a span context from incoming headers.
// Missing or malformed headers return ok=false — absence of tracing
// is never an error.
func ExtractSpanContext(h http.Header) (SpanContext, bool) {
	v := h.Get(TraceparentHeader)
	if v == "" {
		return SpanContext{}, false
	}
	sc, err := ParseTraceparent(v)
	if err != nil {
		return SpanContext{}, false
	}
	return sc, true
}
