package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Event is one trace record in the Chrome trace-event schema
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// a complete span (ph "X", with ts and dur in microseconds) or an
// instant marker (ph "i"). The writer emits one JSON object per line
// (JSONL), so a trace survives a crash mid-write and streams through
// line-oriented tools; wrap the lines in [] (sweeptrace -chrome does)
// to load the file in a Chrome-compatible trace viewer.
type Event struct {
	// Name identifies the span type, e.g. "cell", "attempt", "fault".
	Name string `json:"name"`
	// Cat is the span category, used by viewers for filtering.
	Cat string `json:"cat,omitempty"`
	// Phase is "X" (complete span) or "i" (instant).
	Phase string `json:"ph"`
	// TS is the start timestamp in microseconds since trace start.
	TS float64 `json:"ts"`
	// Dur is the span duration in microseconds (complete spans only).
	Dur float64 `json:"dur,omitempty"`
	// PID and TID give viewers a lane; the sweep uses TID for the
	// matrix row so each kernel renders as its own track.
	PID int   `json:"pid"`
	TID int64 `json:"tid"`
	// Trace, Span and Parent carry distributed-trace identity (see
	// SpanContext): Trace groups every span of one job across
	// processes, Span names this event's own span, Parent links it to
	// the span that caused it — possibly in another process. All
	// optional; single-process traces leave them empty.
	Trace  string `json:"trace,omitempty"`
	Span   string `json:"span,omitempty"`
	Parent string `json:"parent,omitempty"`
	// Proc names the emitting process ("coordinator", a worker name),
	// so a stitched multi-process trace keeps its provenance.
	Proc string `json:"proc,omitempty"`
	// Args carries span-specific payload (kernel, config, attempt,
	// status, error, fault kind, ...).
	Args map[string]any `json:"args,omitempty"`
}

// SpanContext returns the event's own span identity.
func (e *Event) SpanContext() SpanContext {
	return SpanContext{TraceID: e.Trace, SpanID: e.Span}
}

// TraceWriter emits Events as JSONL. It is safe for concurrent use;
// each event is one buffered, atomically written line. The zero
// timestamp is the writer's creation time.
type TraceWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	enc     *json.Encoder
	start   time.Time
	proc    string
	err     error
	scratch []byte
}

// NewTraceWriter wraps w; events are buffered, call Flush (or Close on
// the underlying file after Flush) when done.
func NewTraceWriter(w io.Writer) *TraceWriter {
	bw := bufio.NewWriter(w)
	return &TraceWriter{bw: bw, enc: json.NewEncoder(bw), start: time.Now()}
}

// SetProcess names the emitting process; every subsequent event whose
// Proc is empty is stamped with it. Call once at startup, before
// concurrent emitters exist.
func (tw *TraceWriter) SetProcess(name string) {
	tw.mu.Lock()
	tw.proc = name
	tw.mu.Unlock()
}

// Since returns the trace-relative timestamp of t in microseconds.
func (tw *TraceWriter) Since(t time.Time) float64 {
	return float64(t.Sub(tw.start)) / float64(time.Microsecond)
}

// Emit writes one event. Write errors are sticky: the first is kept
// and every later Emit is a no-op, so hot paths need no error
// handling; check Err or Flush at the end.
func (tw *TraceWriter) Emit(e Event) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.err != nil {
		return
	}
	if e.Proc == "" {
		e.Proc = tw.proc
	}
	tw.err = tw.enc.Encode(e)
}

// Complete emits a completed span that started at start and lasted d.
func (tw *TraceWriter) Complete(name, cat string, tid int64, start time.Time, d time.Duration, args map[string]any) {
	tw.Emit(Event{
		Name: name, Cat: cat, Phase: "X",
		TS: tw.Since(start), Dur: float64(d) / float64(time.Microsecond),
		TID: tid, Args: args,
	})
}

// Instant emits a zero-duration marker stamped now.
func (tw *TraceWriter) Instant(name, cat string, tid int64, args map[string]any) {
	tw.Emit(Event{
		Name: name, Cat: cat, Phase: "i",
		TS: tw.Since(time.Now()), TID: tid, Args: args,
	})
}

// CompleteSpan emits a completed span carrying distributed-trace
// identity: sc names the span itself, parent (may be "") links it to
// its causal parent, possibly in another process.
func (tw *TraceWriter) CompleteSpan(name, cat string, tid int64, sc SpanContext, parent string, start time.Time, d time.Duration, args map[string]any) {
	tw.Emit(Event{
		Name: name, Cat: cat, Phase: "X",
		TS: tw.Since(start), Dur: float64(d) / float64(time.Microsecond),
		TID: tid, Trace: sc.TraceID, Span: sc.SpanID, Parent: parent, Args: args,
	})
}

// InstantSpan emits a zero-duration marker carrying trace identity.
func (tw *TraceWriter) InstantSpan(name, cat string, tid int64, sc SpanContext, parent string, args map[string]any) {
	tw.Emit(Event{
		Name: name, Cat: cat, Phase: "i",
		TS: tw.Since(time.Now()), TID: tid,
		Trace: sc.TraceID, Span: sc.SpanID, Parent: parent, Args: args,
	})
}

// KV is one typed key/value argument for the hot-path emitters. A
// stack-built []KV replaces the map[string]any allocation per leaf
// event — on a sweep emitting two events per cell, that map plus the
// reflective JSON marshal is the difference between tracing costing
// microseconds per cell and a fraction of one.
type KV struct {
	Key string
	s   string
	n   float64
	str bool
}

// KS builds a string-valued argument.
func KS(k, v string) KV { return KV{Key: k, s: v, str: true} }

// KN builds a numeric argument.
func KN(k string, v float64) KV { return KV{Key: k, n: v} }

// EmitFast writes one event through a hand-rolled JSON encoder:
// no reflection, no args map, one buffered write. The output is
// line-for-line parseable by ReadEvents exactly like Emit's; dur 0 is
// omitted (instant markers), as are empty trace identity fields.
func (tw *TraceWriter) EmitFast(name, cat, phase string, tid int64, traceID, span, parent string, ts, dur float64, kvs []KV) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.err != nil {
		return
	}
	b := tw.scratch[:0]
	b = append(b, `{"name":`...)
	b = appendJSONString(b, name)
	b = append(b, `,"cat":`...)
	b = appendJSONString(b, cat)
	b = append(b, `,"ph":`...)
	b = appendJSONString(b, phase)
	b = append(b, `,"ts":`...)
	b = appendJSONFloat(b, ts)
	if dur != 0 {
		b = append(b, `,"dur":`...)
		b = appendJSONFloat(b, dur)
	}
	b = append(b, `,"pid":0,"tid":`...)
	b = strconv.AppendInt(b, tid, 10)
	if traceID != "" {
		b = append(b, `,"trace":`...)
		b = appendJSONString(b, traceID)
	}
	if span != "" {
		b = append(b, `,"span":`...)
		b = appendJSONString(b, span)
	}
	if parent != "" {
		b = append(b, `,"parent":`...)
		b = appendJSONString(b, parent)
	}
	if tw.proc != "" {
		b = append(b, `,"proc":`...)
		b = appendJSONString(b, tw.proc)
	}
	if len(kvs) > 0 {
		b = append(b, `,"args":{`...)
		for i, kv := range kvs {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, kv.Key)
			b = append(b, ':')
			if kv.str {
				b = appendJSONString(b, kv.s)
			} else {
				b = appendJSONFloat(b, kv.n)
			}
		}
		b = append(b, '}')
	}
	b = append(b, '}', '\n')
	if _, err := tw.bw.Write(b); err != nil {
		tw.err = err
	}
	tw.scratch = b
}

// CompleteSpanFast is CompleteSpan on the EmitFast path. Empty traceID
// and parent degrade to a plain single-process span, so one call site
// serves both traced and untraced sweeps.
func (tw *TraceWriter) CompleteSpanFast(name, cat string, tid int64, traceID, parent string, start time.Time, d time.Duration, kvs ...KV) {
	tw.EmitFast(name, cat, "X", tid, traceID, "", parent,
		tw.Since(start), float64(d)/float64(time.Microsecond), kvs)
}

// appendJSONString appends s as a JSON string literal. Multi-byte
// UTF-8 passes through raw (valid JSON); quotes, backslashes and
// control bytes are escaped.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		default:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
	}
	return append(b, '"')
}

// appendJSONFloat appends v as a JSON number; integral values take
// the integer fast path, everything else fixed-point with three
// decimals — nanosecond resolution for microsecond timestamps, and
// several times cheaper than shortest-round-trip formatting.
func appendJSONFloat(b []byte, v float64) []byte {
	if v == float64(int64(v)) {
		return strconv.AppendInt(b, int64(v), 10)
	}
	if v > -1e15 && v < 1e15 {
		return strconv.AppendFloat(b, v, 'f', 3, 64)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Flush drains the buffer and returns the first error seen, if any.
func (tw *TraceWriter) Flush() error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if err := tw.bw.Flush(); err != nil && tw.err == nil {
		tw.err = err
	}
	return tw.err
}

// Err returns the sticky write error, if any.
func (tw *TraceWriter) Err() error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.err
}

// ReadEvents parses a JSONL trace stream back into events — the
// inverse of Emit, used by sweeptrace and tests. Blank lines are
// skipped; a malformed line aborts with its line number.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, &TraceParseError{Line: line, Err: err}
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// TraceParseError reports a malformed trace line.
type TraceParseError struct {
	Line int
	Err  error
}

func (e *TraceParseError) Error() string {
	return fmt.Sprintf("obs: trace line %d: %v", e.Line, e.Err)
}

func (e *TraceParseError) Unwrap() error { return e.Err }
