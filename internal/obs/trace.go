package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one trace record in the Chrome trace-event schema
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// a complete span (ph "X", with ts and dur in microseconds) or an
// instant marker (ph "i"). The writer emits one JSON object per line
// (JSONL), so a trace survives a crash mid-write and streams through
// line-oriented tools; wrap the lines in [] (sweeptrace -chrome does)
// to load the file in a Chrome-compatible trace viewer.
type Event struct {
	// Name identifies the span type, e.g. "cell", "attempt", "fault".
	Name string `json:"name"`
	// Cat is the span category, used by viewers for filtering.
	Cat string `json:"cat,omitempty"`
	// Phase is "X" (complete span) or "i" (instant).
	Phase string `json:"ph"`
	// TS is the start timestamp in microseconds since trace start.
	TS float64 `json:"ts"`
	// Dur is the span duration in microseconds (complete spans only).
	Dur float64 `json:"dur,omitempty"`
	// PID and TID give viewers a lane; the sweep uses TID for the
	// matrix row so each kernel renders as its own track.
	PID int   `json:"pid"`
	TID int64 `json:"tid"`
	// Args carries span-specific payload (kernel, config, attempt,
	// status, error, fault kind, ...).
	Args map[string]any `json:"args,omitempty"`
}

// TraceWriter emits Events as JSONL. It is safe for concurrent use;
// each event is one buffered, atomically written line. The zero
// timestamp is the writer's creation time.
type TraceWriter struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	enc   *json.Encoder
	start time.Time
	err   error
}

// NewTraceWriter wraps w; events are buffered, call Flush (or Close on
// the underlying file after Flush) when done.
func NewTraceWriter(w io.Writer) *TraceWriter {
	bw := bufio.NewWriter(w)
	return &TraceWriter{bw: bw, enc: json.NewEncoder(bw), start: time.Now()}
}

// Since returns the trace-relative timestamp of t in microseconds.
func (tw *TraceWriter) Since(t time.Time) float64 {
	return float64(t.Sub(tw.start)) / float64(time.Microsecond)
}

// Emit writes one event. Write errors are sticky: the first is kept
// and every later Emit is a no-op, so hot paths need no error
// handling; check Err or Flush at the end.
func (tw *TraceWriter) Emit(e Event) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.err != nil {
		return
	}
	tw.err = tw.enc.Encode(e)
}

// Complete emits a completed span that started at start and lasted d.
func (tw *TraceWriter) Complete(name, cat string, tid int64, start time.Time, d time.Duration, args map[string]any) {
	tw.Emit(Event{
		Name: name, Cat: cat, Phase: "X",
		TS: tw.Since(start), Dur: float64(d) / float64(time.Microsecond),
		TID: tid, Args: args,
	})
}

// Instant emits a zero-duration marker stamped now.
func (tw *TraceWriter) Instant(name, cat string, tid int64, args map[string]any) {
	tw.Emit(Event{
		Name: name, Cat: cat, Phase: "i",
		TS: tw.Since(time.Now()), TID: tid, Args: args,
	})
}

// Flush drains the buffer and returns the first error seen, if any.
func (tw *TraceWriter) Flush() error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if err := tw.bw.Flush(); err != nil && tw.err == nil {
		tw.err = err
	}
	return tw.err
}

// Err returns the sticky write error, if any.
func (tw *TraceWriter) Err() error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.err
}

// ReadEvents parses a JSONL trace stream back into events — the
// inverse of Emit, used by sweeptrace and tests. Blank lines are
// skipped; a malformed line aborts with its line number.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, &TraceParseError{Line: line, Err: err}
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// TraceParseError reports a malformed trace line.
type TraceParseError struct {
	Line int
	Err  error
}

func (e *TraceParseError) Error() string {
	return fmt.Sprintf("obs: trace line %d: %v", e.Line, e.Err)
}

func (e *TraceParseError) Unwrap() error { return e.Err }
