package obs

import (
	"net/http"
	"strings"
	"testing"
)

func TestNewSpanContextValidAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		sc := NewSpanContext()
		if !sc.Valid() {
			t.Fatalf("NewSpanContext returned invalid context %+v", sc)
		}
		if len(sc.TraceID) != 32 || len(sc.SpanID) != 16 {
			t.Fatalf("id lengths = %d/%d, want 32/16", len(sc.TraceID), len(sc.SpanID))
		}
		if seen[sc.TraceID] {
			t.Fatalf("trace id %s repeated within 100 draws", sc.TraceID)
		}
		seen[sc.TraceID] = true
	}
}

func TestChildSharesTraceFreshSpan(t *testing.T) {
	root := NewSpanContext()
	child := root.Child()
	if child.TraceID != root.TraceID {
		t.Fatalf("child trace %s != root trace %s", child.TraceID, root.TraceID)
	}
	if child.SpanID == root.SpanID {
		t.Fatal("child span id should differ from the root's")
	}
	if !child.Valid() {
		t.Fatalf("child context invalid: %+v", child)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewSpanContext()
	tp := sc.Traceparent()
	if !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent %q not in 00-...-01 form", tp)
	}
	got, err := ParseTraceparent(tp)
	if err != nil {
		t.Fatal(err)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v want %+v", got, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"00-abc-def-01",
		"00-00000000000000000000000000000000-1234567890abcdef-01", // zero trace id
		"00-1234567890abcdef1234567890abcdef-0000000000000000-01", // zero span id
		"00-1234567890ABCDEF1234567890abcdef-1234567890abcdef-01", // upper-case hex
		"ff-1234567890abcdef1234567890abcdef-1234567890abcdef-01", // reserved version
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted, want error", s)
		}
	}
	// Forward compatibility: a future version with trailing fields
	// still yields the IDs.
	got, err := ParseTraceparent("01-1234567890abcdef1234567890abcdef-1234567890abcdef-01-extra")
	if err != nil {
		t.Fatalf("future-version traceparent rejected: %v", err)
	}
	if got.TraceID != "1234567890abcdef1234567890abcdef" {
		t.Fatalf("future-version trace id = %q", got.TraceID)
	}
}

func TestHeaderInjectExtract(t *testing.T) {
	h := http.Header{}
	if _, ok := ExtractSpanContext(h); ok {
		t.Fatal("extract from empty headers should report ok=false")
	}
	sc := NewSpanContext()
	sc.Inject(h)
	got, ok := ExtractSpanContext(h)
	if !ok || got != sc {
		t.Fatalf("extract = %+v ok=%v, want %+v", got, ok, sc)
	}
	// Invalid contexts must not stamp a header.
	h2 := http.Header{}
	SpanContext{}.Inject(h2)
	if h2.Get(TraceparentHeader) != "" {
		t.Fatalf("zero context injected %q", h2.Get(TraceparentHeader))
	}
	// A malformed header is ignored, not an error.
	h3 := http.Header{}
	h3.Set(TraceparentHeader, "not-a-traceparent")
	if _, ok := ExtractSpanContext(h3); ok {
		t.Fatal("malformed traceparent extracted ok")
	}
}
