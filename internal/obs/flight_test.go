package obs

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestFlightRingWrapsAndOrders(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 1; i <= 10; i++ {
		fr.Record("tick", map[string]any{"i": i})
	}
	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(7 + i)
		if ev.Seq != wantSeq || ev.Kind != "tick" {
			t.Fatalf("event %d = seq %d kind %q, want seq %d", i, ev.Seq, ev.Kind, wantSeq)
		}
	}
	if fr.Recorded() != 10 {
		t.Fatalf("Recorded() = %d, want 10", fr.Recorded())
	}
}

func TestFlightDumpRoundTrip(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record("lease", map[string]any{"job": "j", "row": 3})
	fr.Record("shed", map[string]any{"reason": "queue_full"})
	var buf bytes.Buffer
	if err := fr.WriteDump(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadFlightDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Kind != "lease" || evs[1].Kind != "shed" {
		t.Fatalf("dump round trip = %+v", evs)
	}
	if evs[0].Args["row"].(float64) != 3 {
		t.Fatalf("args lost: %+v", evs[0].Args)
	}
}

func TestFlightFileSurvivesWithoutClose(t *testing.T) {
	// Simulates kill -9: record events, never Close, recover from the
	// path. The file contents must already be there.
	path := filepath.Join(t.TempDir(), "flight.ring")
	fr, err := OpenFlightRecorder(path, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		fr.Record("lease", map[string]any{"row": i})
	}
	// No Close, no Sync — read the file as a fresh process would.
	evs, err := ReadFlightFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 8 {
		t.Fatalf("recovered %d events, want 8 (ring size)", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(5+i) {
			t.Fatalf("recovered seq %d at %d, want %d", ev.Seq, i, 5+i)
		}
		if ev.Args["row"].(float64) != float64(5+i) {
			t.Fatalf("recovered args %+v at seq %d", ev.Args, ev.Seq)
		}
	}
	fr.Close()
}

func TestFlightFileTornSlotSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.ring")
	fr, err := OpenFlightRecorder(path, 4, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		fr.Record("ev", map[string]any{"i": i})
	}
	fr.Close()
	// Tear slot 1 (seq 2): flip a payload byte so the CRC fails.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(flightHeaderSize + 1*256 + flightSlotHeader + 3)
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
	f.Close()
	evs, err := ReadFlightFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("recovered %d events, want 3 (one torn)", len(evs))
	}
	for _, ev := range evs {
		if ev.Seq == 2 {
			t.Fatal("torn slot seq 2 survived its CRC check")
		}
	}
}

func TestFlightFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-ring")
	if err := os.WriteFile(path, []byte("hello world, definitely not a flight file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFlightFile(path); err == nil {
		t.Fatal("garbage file recovered without error")
	}
}

func TestFlightConcurrentRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.ring")
	fr, err := OpenFlightRecorder(path, 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				fr.Record("ev", map[string]any{"g": g, "i": i})
			}
		}(g)
	}
	wg.Wait()
	if fr.Recorded() != 400 {
		t.Fatalf("Recorded() = %d, want 400", fr.Recorded())
	}
	evs := fr.Events()
	if len(evs) != 64 {
		t.Fatalf("ring holds %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("ring not seq-ordered at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	rec, err := ReadFlightFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 64 {
		t.Fatalf("file ring recovered %d, want 64", len(rec))
	}
	fr.Close()
}

func TestFlightOversizedEventDegrades(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.ring")
	fr, err := OpenFlightRecorder(path, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	fr.Record("small", nil)
	fr.Record("big", map[string]any{"blob": string(make([]byte, 4096))})
	fr.Record("small2", nil)
	fr.Close()
	evs, err := ReadFlightFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The oversized event's slot is truncated JSON and skipped; the
	// in-memory ring still has it, and its neighbors survive on disk.
	kinds := map[string]bool{}
	for _, ev := range evs {
		kinds[ev.Kind] = true
	}
	if !kinds["small"] || !kinds["small2"] || kinds["big"] {
		t.Fatalf("recovered kinds = %v, want small+small2 without big", kinds)
	}
}

func TestFlightHandler(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record("lease", map[string]any{"row": 1})
	rr := httptest.NewRecorder()
	FlightHandler(fr).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	evs, err := ReadFlightDump(rr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != "lease" {
		t.Fatalf("handler dump = %+v", evs)
	}
}

func BenchmarkFlightRecordFile(b *testing.B) {
	path := filepath.Join(b.TempDir(), "flight.ring")
	fr, err := OpenFlightRecorder(path, DefaultFlightSlots, DefaultFlightSlotSize)
	if err != nil {
		b.Fatal(err)
	}
	defer fr.Close()
	args := map[string]any{"job": "job-000001", "row": 17, "epoch": 3, "worker": "w0"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr.Record("lease", args)
	}
}
