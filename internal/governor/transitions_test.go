package governor

import (
	"testing"

	"gpuscale/internal/core"
	"gpuscale/internal/power"
)

// pingPongWorkload alternates two categories so a per-kernel governor
// switches configuration on every item.
func pingPongWorkload(items int) Workload {
	var w Workload
	for i := 0; i < items; i++ {
		if i%2 == 0 {
			w = append(w, Item{Kernel: denseKernel(), Launches: 1, Category: core.CompCoupled})
		} else {
			w = append(w, Item{Kernel: streamKernel(), Launches: 1, Category: core.BWCoupled})
		}
	}
	return w
}

func TestTransitionCountAndMakespan(t *testing.T) {
	pm := power.DefaultModel()
	space := testSpace(t)
	w := pingPongWorkload(8)
	guided, err := TaxonomyGuided(pm, w, space, capW)
	if err != nil {
		t.Fatal(err)
	}
	n := transitionCount(guided.Decisions)
	if n != 7 {
		t.Errorf("ping-pong workload transitions = %d, want 7", n)
	}
	withT := WithTransitions(guided, DefaultTransitionNS)
	if withT <= guided.TotalTimeNS {
		t.Errorf("transition accounting added nothing: %g vs %g", withT, guided.TotalTimeNS)
	}
	if want := guided.TotalTimeNS + 7*DefaultTransitionNS; withT != want {
		t.Errorf("WithTransitions = %g, want %g", withT, want)
	}
}

func TestHysteresisReducesTransitions(t *testing.T) {
	pm := power.DefaultModel()
	space := testSpace(t)
	// Tiny launch counts make per-item gains smaller than the switch
	// cost, so hysteresis should hold the configuration.
	w := pingPongWorkload(8)
	guided, err := TaxonomyGuided(pm, w, space, capW)
	if err != nil {
		t.Fatal(err)
	}
	hyst, err := Hysteresis(pm, w, guided.Decisions, capW, 10_000_000) // 10 ms switches
	if err != nil {
		t.Fatal(err)
	}
	nGuided := transitionCount(guided.Decisions)
	nHyst := transitionCount(hyst.Decisions)
	if nHyst >= nGuided {
		t.Errorf("hysteresis did not reduce transitions: %d vs %d", nHyst, nGuided)
	}
	// Under heavy switch costs, hysteresis must win end to end.
	if WithTransitions(hyst, 10_000_000) >= WithTransitions(guided, 10_000_000) {
		t.Errorf("hysteresis slower including transitions: %g vs %g",
			WithTransitions(hyst, 10_000_000), WithTransitions(guided, 10_000_000))
	}
	// Cap still respected everywhere.
	for _, d := range hyst.Decisions {
		if d.PowerW > capW {
			t.Fatalf("hysteresis decision exceeds cap: %+v", d)
		}
	}
}

func TestHysteresisKeepsSwitchingWhenWorthIt(t *testing.T) {
	pm := power.DefaultModel()
	space := testSpace(t)
	// Huge launch counts: per-item gains dwarf a cheap transition, so
	// hysteresis should keep the per-kernel choices.
	var w Workload
	for i := 0; i < 4; i++ {
		if i%2 == 0 {
			w = append(w, Item{Kernel: denseKernel(), Launches: 1000, Category: core.CompCoupled})
		} else {
			w = append(w, Item{Kernel: streamKernel(), Launches: 1000, Category: core.BWCoupled})
		}
	}
	guided, err := TaxonomyGuided(pm, w, space, capW)
	if err != nil {
		t.Fatal(err)
	}
	hyst, err := Hysteresis(pm, w, guided.Decisions, capW, DefaultTransitionNS)
	if err != nil {
		t.Fatal(err)
	}
	if transitionCount(hyst.Decisions) != transitionCount(guided.Decisions) {
		t.Errorf("hysteresis dropped worthwhile switches: %d vs %d",
			transitionCount(hyst.Decisions), transitionCount(guided.Decisions))
	}
}

func TestHysteresisErrors(t *testing.T) {
	pm := power.DefaultModel()
	w := pingPongWorkload(2)
	if _, err := Hysteresis(pm, w, nil, capW, 1); err == nil {
		t.Error("mismatched decisions accepted")
	}
	bad := power.DefaultModel()
	bad.DynPerCUW = -1
	if _, err := Hysteresis(bad, w, make([]Decision, 2), capW, 1); err == nil {
		t.Error("invalid model accepted")
	}
}
