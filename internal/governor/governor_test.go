package governor

import (
	"testing"

	"gpuscale/internal/core"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/power"
)

func denseKernel() *kernel.Kernel {
	return kernel.New("g", "g", "dense").
		Geometry(4096, 256).
		Compute(25000, 500).
		Access(kernel.Streaming, 8, 2, 4).
		MustBuild()
}

func streamKernel() *kernel.Kernel {
	return kernel.New("g", "g", "stream").
		Geometry(4096, 256).
		Compute(300, 50).
		Access(kernel.Streaming, 256, 64, 4).
		Locality(256*1024, 0, 0).
		MustBuild()
}

func testWorkload() Workload {
	return Workload{
		{Kernel: denseKernel(), Launches: 3, Category: core.CompCoupled},
		{Kernel: streamKernel(), Launches: 3, Category: core.BWCoupled},
	}
}

func testSpace(t *testing.T) hw.Space {
	t.Helper()
	s, err := hw.NewSpace(
		[]int{4, 12, 20, 28, 36, 44},
		[]float64{200, 400, 600, 800, 1000},
		[]float64{150, 425, 700, 975, 1250})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const capW = 150 // tight: the flagship config burns ~270 W

func TestOracleRespectsCap(t *testing.T) {
	pm := power.DefaultModel()
	out, err := Oracle(pm, testWorkload(), testSpace(t), capW)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range out.Decisions {
		if d.PowerW > capW {
			t.Fatalf("oracle decision %v exceeds cap: %.1f W", d.Config, d.PowerW)
		}
	}
	if out.TotalTimeNS <= 0 {
		t.Fatal("non-positive makespan")
	}
}

func TestStaticRespectsCapAndIsOneConfig(t *testing.T) {
	pm := power.DefaultModel()
	out, err := Static(pm, testWorkload(), testSpace(t), capW)
	if err != nil {
		t.Fatal(err)
	}
	first := out.Decisions[0].Config
	for _, d := range out.Decisions {
		if d.Config != first {
			t.Fatalf("static governor used two configs: %v and %v", first, d.Config)
		}
		if d.PowerW > capW {
			t.Fatalf("static decision exceeds cap: %.1f W", d.PowerW)
		}
	}
}

func TestTaxonomyGuidedNearOracleWithFewTrials(t *testing.T) {
	pm := power.DefaultModel()
	space := testSpace(t)
	w := testWorkload()
	oracle, err := Oracle(pm, w, space, capW)
	if err != nil {
		t.Fatal(err)
	}
	guided, err := TaxonomyGuided(pm, w, space, capW)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range guided.Decisions {
		if d.PowerW > capW {
			t.Fatalf("guided decision exceeds cap: %.1f W", d.PowerW)
		}
	}
	// Within 25% of the oracle makespan...
	if guided.TotalTimeNS > oracle.TotalTimeNS*1.25 {
		t.Errorf("guided makespan %.0f ns vs oracle %.0f ns (>25%% worse)",
			guided.TotalTimeNS, oracle.TotalTimeNS)
	}
	// ...at a fraction of the trial count.
	if guided.TotalTrials*4 > oracle.TotalTrials {
		t.Errorf("guided used %d trials vs oracle %d, want >= 4x fewer",
			guided.TotalTrials, oracle.TotalTrials)
	}
}

func TestTaxonomyGuidedBeatsStatic(t *testing.T) {
	// The mixed workload is where per-kernel adaptation pays: the
	// static governor must compromise between the compute-coupled and
	// bandwidth-coupled kernels; the guided one cuts each kernel's
	// free knob.
	pm := power.DefaultModel()
	space := testSpace(t)
	w := testWorkload()
	static, err := Static(pm, w, space, capW)
	if err != nil {
		t.Fatal(err)
	}
	guided, err := TaxonomyGuided(pm, w, space, capW)
	if err != nil {
		t.Fatal(err)
	}
	if guided.TotalTimeNS > static.TotalTimeNS*1.01 {
		t.Errorf("guided makespan %.0f ns worse than static %.0f ns",
			guided.TotalTimeNS, static.TotalTimeNS)
	}
}

func TestGuidedCutsTheRightKnob(t *testing.T) {
	pm := power.DefaultModel()
	space := testSpace(t)
	out, err := TaxonomyGuided(pm, testWorkload(), space, capW)
	if err != nil {
		t.Fatal(err)
	}
	dense, stream := out.Decisions[0].Config, out.Decisions[1].Config
	// The compute-coupled kernel keeps a faster core clock than memory
	// position; the bandwidth-coupled kernel keeps the memory clock at
	// or near max.
	if stream.MemClockMHz < 1250 {
		t.Errorf("bw-coupled kernel got mem clock %g, want the top setting", stream.MemClockMHz)
	}
	if dense.CoreClockMHz < stream.CoreClockMHz {
		t.Errorf("comp-coupled core clock %g below bw-coupled's %g",
			dense.CoreClockMHz, stream.CoreClockMHz)
	}
}

func TestImpossibleCap(t *testing.T) {
	pm := power.DefaultModel()
	space := testSpace(t)
	w := testWorkload()
	if _, err := Oracle(pm, w, space, 1); err == nil {
		t.Error("oracle accepted an impossible cap")
	}
	if _, err := Static(pm, w, space, 1); err == nil {
		t.Error("static accepted an impossible cap")
	}
	if _, err := TaxonomyGuided(pm, w, space, 1); err == nil {
		t.Error("guided accepted an impossible cap")
	}
}

func TestInvalidModelRejected(t *testing.T) {
	bad := power.DefaultModel()
	bad.DynPerCUW = -1
	space := testSpace(t)
	w := testWorkload()
	if _, err := Oracle(bad, w, space, capW); err == nil {
		t.Error("oracle accepted invalid model")
	}
	if _, err := Static(bad, w, space, capW); err == nil {
		t.Error("static accepted invalid model")
	}
	if _, err := TaxonomyGuided(bad, w, space, capW); err == nil {
		t.Error("guided accepted invalid model")
	}
}

func TestPreferenceCoversAllCategories(t *testing.T) {
	space := testSpace(t)
	n := space.Size()
	for c := core.CompCoupled; c <= core.Irregular; c++ {
		order := preference(c, space)
		if len(order) != n {
			t.Fatalf("%v preference has %d configs, want %d", c, len(order), n)
		}
		seen := map[hw.Config]bool{}
		for _, cfg := range order {
			if seen[cfg] {
				t.Fatalf("%v preference repeats %v", c, cfg)
			}
			seen[cfg] = true
		}
	}
}
