// Package governor applies the taxonomy to the problem that motivated
// the paper's research line: choosing hardware configurations under a
// board power cap. Knowing a kernel's scaling category tells a DVFS
// governor which knob is free to cut — a bandwidth-coupled kernel can
// drop the core clock almost for free, a compute-coupled one can drop
// the memory clock, a latency-bound one can drop both.
//
// Three governors are provided for comparison:
//
//   - Oracle: simulates every configuration in the space and picks the
//     fastest one that fits the cap (the upper bound, at full sweep
//     cost).
//   - Static: picks the single fastest cap-fitting configuration for
//     the whole workload (no per-kernel adaptation).
//   - TaxonomyGuided: walks a category-specific preference order and
//     simulates only until a cap-fitting configuration is found —
//     a handful of trials instead of the full grid.
package governor

import (
	"fmt"
	"sort"

	"gpuscale/internal/core"
	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/power"
)

// Item is one workload entry: a kernel and how often it launches.
type Item struct {
	// Kernel is the kernel description.
	Kernel *kernel.Kernel
	// Launches is how many invocations the workload performs.
	Launches int
	// Category is the kernel's taxonomy class, used by the
	// taxonomy-guided governor (obtained from a prior study or from
	// probe measurements).
	Category core.Category
}

// Workload is a sequence of kernels with launch counts.
type Workload []Item

// Decision is one governor's choice for one workload item.
type Decision struct {
	// Config is the chosen hardware configuration.
	Config hw.Config
	// TimeNS is one invocation's duration there.
	TimeNS float64
	// PowerW is the board power there.
	PowerW float64
	// Trials is how many configurations the governor simulated to
	// decide.
	Trials int
}

// Outcome aggregates a governor run over a workload.
type Outcome struct {
	// Decisions has one entry per workload item.
	Decisions []Decision
	// TotalTimeNS is the cap-respecting workload makespan.
	TotalTimeNS float64
	// TotalTrials is the summed simulation count.
	TotalTrials int
}

// measure simulates one kernel at one configuration and returns time
// and power.
func measure(pm power.Model, k *kernel.Kernel, cfg hw.Config) (timeNS, watts float64, err error) {
	r, err := gcn.Simulate(k, cfg)
	if err != nil {
		return 0, 0, err
	}
	w := pm.PowerW(cfg, power.ActivityOf(r, cfg))
	return r.TimeNS, w, nil
}

// Oracle picks, per kernel, the fastest configuration fitting the cap,
// at the cost of simulating the entire space.
func Oracle(pm power.Model, w Workload, space hw.Space, capW float64) (Outcome, error) {
	if err := pm.Validate(); err != nil {
		return Outcome{}, err
	}
	cfgs := space.Configs()
	var out Outcome
	for _, item := range w {
		best := Decision{}
		found := false
		for _, cfg := range cfgs {
			t, p, err := measure(pm, item.Kernel, cfg)
			if err != nil {
				return Outcome{}, err
			}
			if p > capW {
				continue
			}
			if !found || t < best.TimeNS {
				best = Decision{Config: cfg, TimeNS: t, PowerW: p}
				found = true
			}
		}
		if !found {
			return Outcome{}, fmt.Errorf("governor: no configuration fits %g W for %s",
				capW, item.Kernel.Name)
		}
		best.Trials = len(cfgs)
		out.Decisions = append(out.Decisions, best)
		out.TotalTimeNS += best.TimeNS * float64(item.Launches)
		out.TotalTrials += best.Trials
	}
	return out, nil
}

// Static picks one configuration for the whole workload: the
// cap-fitting configuration minimising total workload time.
func Static(pm power.Model, w Workload, space hw.Space, capW float64) (Outcome, error) {
	if err := pm.Validate(); err != nil {
		return Outcome{}, err
	}
	cfgs := space.Configs()
	bestTotal := 0.0
	var bestDecisions []Decision
	found := false
	trials := 0
	for _, cfg := range cfgs {
		total := 0.0
		decisions := make([]Decision, 0, len(w))
		ok := true
		for _, item := range w {
			t, p, err := measure(pm, item.Kernel, cfg)
			if err != nil {
				return Outcome{}, err
			}
			trials++
			if p > capW {
				ok = false
				break
			}
			decisions = append(decisions, Decision{Config: cfg, TimeNS: t, PowerW: p})
			total += t * float64(item.Launches)
		}
		if !ok {
			continue
		}
		if !found || total < bestTotal {
			bestTotal, bestDecisions, found = total, decisions, true
		}
	}
	if !found {
		return Outcome{}, fmt.Errorf("governor: no single configuration fits %g W", capW)
	}
	return Outcome{Decisions: bestDecisions, TotalTimeNS: bestTotal, TotalTrials: trials}, nil
}

// preference orders a space's configurations from most to least
// desirable for a taxonomy category: primary order is the performance
// the class predicts, and ties break towards *higher* settings on the
// class's secondary axes — so the first cap-fitting configuration in
// the walk keeps the insensitive knob as high as the cap allows,
// rather than needlessly flooring it.
func preference(cat core.Category, space hw.Space) []hw.Config {
	cfgs := space.Configs()
	score := func(c hw.Config) (primary, secondary float64) {
		cu := float64(c.CUs)
		fc := c.CoreClockMHz
		fm := c.MemClockMHz
		switch cat {
		case core.CompCoupled:
			return cu * fc, fm
		case core.BWCoupled:
			return fm, cu * fc
		case core.LatencyBound:
			// CUs add concurrent chases; clocks matter weakly.
			return cu, fc + fm
		case core.ParallelismLimited:
			// Frequency still helps; keep CUs high (cutting below the
			// launch size would hurt and the governor cannot see the
			// launch size from the category alone).
			return fc, cu*100 + fm
		case core.LaunchBound:
			// Everything performs the same: walk cheapest-first so the
			// pick saves the most power.
			return -(cu*fc + fm), 0
		case core.CUIntolerant:
			// Moderate CU counts; clocks still help.
			mid := 20.0
			d := cu - mid
			return fc + fm - d*d*10, cu
		default: // Balanced, Irregular: both ceilings matter.
			bw := fm * 0.256
			comp := cu * fc * 0.128
			if bw < comp {
				return bw, comp
			}
			return comp, bw
		}
	}
	type scored struct {
		cfg                hw.Config
		primary, secondary float64
	}
	ss := make([]scored, len(cfgs))
	for i, c := range cfgs {
		p, s := score(c)
		ss[i] = scored{cfg: c, primary: p, secondary: s}
	}
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].primary != ss[j].primary {
			return ss[i].primary > ss[j].primary
		}
		return ss[i].secondary > ss[j].secondary
	})
	out := make([]hw.Config, len(ss))
	for i, s := range ss {
		out[i] = s.cfg
	}
	return out
}

// DefaultTrialBudget is how many cap-fitting candidates TaxonomyGuided
// measures per kernel before committing to the best of them.
const DefaultTrialBudget = 4

// TaxonomyGuided walks each kernel's category preference order,
// measures the first few cap-fitting configurations, and takes the
// fastest. The trial count stays in the single digits per kernel
// instead of the grid size; the small budget hedges against kernels
// that sit at a category boundary.
func TaxonomyGuided(pm power.Model, w Workload, space hw.Space, capW float64) (Outcome, error) {
	if err := pm.Validate(); err != nil {
		return Outcome{}, err
	}
	var out Outcome
	for _, item := range w {
		order := preference(item.Category, space)
		var d Decision
		fitting := 0
		for _, cfg := range order {
			t, p, err := measure(pm, item.Kernel, cfg)
			if err != nil {
				return Outcome{}, err
			}
			d.Trials++
			if p > capW {
				continue
			}
			if fitting == 0 || t < d.TimeNS {
				d.Config, d.TimeNS, d.PowerW = cfg, t, p
			}
			fitting++
			if fitting >= DefaultTrialBudget {
				break
			}
		}
		if fitting == 0 {
			return Outcome{}, fmt.Errorf("governor: no configuration fits %g W for %s",
				capW, item.Kernel.Name)
		}
		out.Decisions = append(out.Decisions, d)
		out.TotalTimeNS += d.TimeNS * float64(item.Launches)
		out.TotalTrials += d.Trials
	}
	return out, nil
}
