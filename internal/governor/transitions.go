package governor

import (
	"fmt"

	"gpuscale/internal/hw"
	"gpuscale/internal/power"
)

// DVFS transitions are not free: reprogramming clocks and voltages
// stalls the GPU for tens of microseconds. A governor that switches
// configurations for every kernel launch can therefore lose what the
// per-kernel optimisation gained — the transition-overhead effect
// reported for mobile DVFS in the same IISWC'15 proceedings. This file
// adds transition accounting and a hysteresis governor that only
// switches when the predicted gain repays the switch cost.

// DefaultTransitionNS is the stall of one configuration change.
const DefaultTransitionNS = 50_000 // 50 us

// transitionCount counts configuration changes over a decision
// sequence executed in order.
func transitionCount(ds []Decision) int {
	n := 0
	for i := 1; i < len(ds); i++ {
		if ds[i].Config != ds[i-1].Config {
			n++
		}
	}
	return n
}

// WithTransitions returns the outcome's makespan including transition
// stalls at the given per-switch cost, assuming the workload executes
// its items in order, every launch back to back (item i runs Launches
// times before item i+1 starts, so switches happen only at item
// boundaries).
func WithTransitions(o Outcome, transitionNS float64) float64 {
	return o.TotalTimeNS + float64(transitionCount(o.Decisions))*transitionNS
}

// Hysteresis re-evaluates a per-kernel decision sequence against
// transition costs: walking the workload in order, it keeps the
// previous kernel's configuration whenever switching would cost more
// than the predicted per-item gain. It needs the power model to
// re-measure kernels on the carried-over configuration.
func Hysteresis(pm power.Model, w Workload, decisions []Decision, capW, transitionNS float64) (Outcome, error) {
	if err := pm.Validate(); err != nil {
		return Outcome{}, err
	}
	if len(decisions) != len(w) {
		return Outcome{}, fmt.Errorf("governor: %d decisions for %d items", len(decisions), len(w))
	}
	var out Outcome
	var current hw.Config
	haveCurrent := false
	for i, item := range w {
		preferred := decisions[i]
		chosen := preferred
		if haveCurrent && current != preferred.Config {
			// Staying costs extra run time; switching costs the
			// transition stall. Stay when cheaper — but never violate
			// the cap.
			tStay, pStay, err := measure(pm, item.Kernel, current)
			if err != nil {
				return Outcome{}, err
			}
			chosen.Trials++
			if pStay <= capW {
				stayCost := tStay * float64(item.Launches)
				switchCost := preferred.TimeNS*float64(item.Launches) + transitionNS
				if stayCost <= switchCost {
					chosen = Decision{Config: current, TimeNS: tStay, PowerW: pStay,
						Trials: preferred.Trials + 1}
				}
			}
		}
		current, haveCurrent = chosen.Config, true
		out.Decisions = append(out.Decisions, chosen)
		out.TotalTimeNS += chosen.TimeNS * float64(item.Launches)
		out.TotalTrials += chosen.Trials
	}
	return out, nil
}
