package predict

import (
	"sync"
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/suites"
	"gpuscale/internal/sweep"
)

var corpusSweep = sync.OnceValues(func() (*sweep.Matrix, error) {
	return sweep.Run(suites.AllKernels(suites.Corpus()), hw.StudySpace(), sweep.Options{})
})

func corpusMatrix(t *testing.T) *sweep.Matrix {
	t.Helper()
	m, err := corpusSweep()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultProbes(t *testing.T) {
	space := hw.StudySpace()
	probes := DefaultProbes(space)
	if len(probes) != 5 {
		t.Fatalf("probes = %d, want 5", len(probes))
	}
	if probes[0] != space.Min() {
		t.Errorf("first probe %v, want base %v", probes[0], space.Min())
	}
	if probes[4] != space.Max() {
		t.Errorf("last probe %v, want flagship %v", probes[4], space.Max())
	}
	for _, p := range probes {
		if space.Index(p) < 0 {
			t.Errorf("probe %v not on grid", p)
		}
	}
}

func TestTrainPredictSelf(t *testing.T) {
	// Predicting a training kernel from its own probes must recover a
	// surface close to its truth (the centroid it belongs to).
	m := corpusMatrix(t)
	p, err := Train(m, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Clusters() != 10 {
		t.Fatalf("Clusters() = %d, want 10", p.Clusters())
	}
	truth := m.Throughput[0]
	probes := make([]float64, len(p.probeIdx))
	for i, idx := range p.probeIdx {
		probes[i] = truth[idx]
	}
	pred, err := p.Predict(probes)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != len(truth) {
		t.Fatalf("prediction length %d, want %d", len(pred), len(truth))
	}
	for c := range pred {
		if pred[c] <= 0 {
			t.Fatalf("non-positive prediction at %d", c)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(&sweep.Matrix{Space: hw.StudySpace()}, 4, 1); err == nil {
		t.Error("empty matrix accepted")
	}
	m := corpusMatrix(t)
	if _, err := Train(m, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestPredictErrors(t *testing.T) {
	m := corpusMatrix(t)
	p, err := Train(m, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Predict([]float64{1, 2}); err == nil {
		t.Error("wrong probe count accepted")
	}
	if _, err := p.Predict([]float64{0, 1, 1, 1, 1}); err == nil {
		t.Error("zero base accepted")
	}
}

func TestHeldOutAccuracy(t *testing.T) {
	// The headline claim of the companion prediction work: a handful
	// of probe runs plus clustered scaling surfaces predict the other
	// 886 configurations with usable accuracy. Train on half the
	// corpus, test on the unseen half.
	m := corpusMatrix(t)
	train, test := SplitMatrix(m)
	if len(train.Kernels)+len(test.Kernels) != len(m.Kernels) {
		t.Fatalf("split lost kernels: %d + %d != %d",
			len(train.Kernels), len(test.Kernels), len(m.Kernels))
	}
	p, err := Train(train, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Evaluate(p, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Kernels != len(test.Kernels) {
		t.Errorf("evaluated %d kernels, want %d", acc.Kernels, len(test.Kernels))
	}
	if acc.MAPE > 0.25 {
		t.Errorf("held-out MAPE = %.1f%%, want <= 25%%", 100*acc.MAPE)
	}
	if acc.P90APE > 0.6 {
		t.Errorf("held-out P90 APE = %.1f%%, want <= 60%%", 100*acc.P90APE)
	}
}

func TestMoreClustersHelp(t *testing.T) {
	m := corpusMatrix(t)
	train, test := SplitMatrix(m)
	p2, err := Train(train, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	p12, err := Train(train, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Evaluate(p2, test)
	if err != nil {
		t.Fatal(err)
	}
	a12, err := Evaluate(p12, test)
	if err != nil {
		t.Fatal(err)
	}
	if a12.MAPE >= a2.MAPE {
		t.Errorf("12 clusters (MAPE %.3f) no better than 2 (MAPE %.3f)", a12.MAPE, a2.MAPE)
	}
}

func TestEvaluateSpaceMismatch(t *testing.T) {
	m := corpusMatrix(t)
	p, err := Train(m, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	small, err := hw.NewSpace([]int{4}, []float64{200}, []float64{150})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(p, &sweep.Matrix{Space: small}); err == nil {
		t.Error("space mismatch accepted")
	}
}
