// Package predict implements the extension the paper's research line
// leads to (same group, same dataset): predicting a kernel's full
// performance-scaling surface from a handful of probe measurements.
//
// Training clusters the normalised scaling surfaces of known kernels;
// each cluster centroid *is* a canonical scaling surface. To predict a
// new kernel, measure it on the few probe configurations, match those
// readings against the centroids, and scale the winning centroid by
// the kernel's base-configuration performance. The taxonomy's core
// observation — kernels fall into a small number of scaling families —
// is exactly what makes this work.
package predict

import (
	"fmt"
	"math"

	"gpuscale/internal/hw"
	"gpuscale/internal/stats"
	"gpuscale/internal/sweep"
)

// Predictor maps probe measurements to full scaling surfaces.
type Predictor struct {
	// space is the configuration grid predictions cover.
	space hw.Space
	// probeIdx are the configuration indices a new kernel must measure.
	probeIdx []int
	// centroids are canonical normalised surfaces (relative to the
	// base configuration, index 0).
	centroids [][]float64
}

// DefaultProbes returns the standard probe set for a space: the base
// corner, the three single-axis extremes, and the flagship corner —
// five measurements instead of the grid's full size.
func DefaultProbes(space hw.Space) []hw.Config {
	nCU := len(space.CUCounts) - 1
	nF := len(space.CoreClocksMHz) - 1
	nM := len(space.MemClocksMHz) - 1
	return []hw.Config{
		space.At(0, 0, 0),
		space.At(nCU, 0, 0),
		space.At(0, nF, 0),
		space.At(0, 0, nM),
		space.At(nCU, nF, nM),
	}
}

// Train builds a predictor from a full sweep matrix by k-means
// clustering the normalised surfaces. Deterministic for a fixed seed.
func Train(m *sweep.Matrix, k int, seed int64) (*Predictor, error) {
	if len(m.Kernels) == 0 {
		return nil, fmt.Errorf("predict: empty training matrix")
	}
	surfaces := make([][]float64, len(m.Kernels))
	for i, row := range m.Throughput {
		s, err := normalise(row)
		if err != nil {
			return nil, fmt.Errorf("predict: kernel %s: %w", m.Kernels[i], err)
		}
		surfaces[i] = s
	}
	c, err := stats.KMeans(surfaces, k, seed, 6)
	if err != nil {
		return nil, fmt.Errorf("predict: clustering: %w", err)
	}
	probes := DefaultProbes(m.Space)
	idx := make([]int, len(probes))
	for i, p := range probes {
		idx[i] = m.Space.Index(p)
		if idx[i] < 0 {
			return nil, fmt.Errorf("predict: probe %v not in space", p)
		}
	}
	return &Predictor{space: m.Space, probeIdx: idx, centroids: c.Centroids}, nil
}

// normalise divides a throughput row by its base (index 0) value.
func normalise(row []float64) ([]float64, error) {
	if len(row) == 0 || row[0] <= 0 {
		return nil, fmt.Errorf("non-positive base throughput")
	}
	out := make([]float64, len(row))
	for i, v := range row {
		out[i] = v / row[0]
	}
	return out, nil
}

// Probes returns the configurations a caller must measure before
// calling Predict, in order.
func (p *Predictor) Probes() []hw.Config {
	out := make([]hw.Config, len(p.probeIdx))
	cfgs := p.space.Configs()
	for i, idx := range p.probeIdx {
		out[i] = cfgs[idx]
	}
	return out
}

// Clusters returns the number of canonical surfaces the predictor
// holds.
func (p *Predictor) Clusters() int { return len(p.centroids) }

// Predict returns the predicted throughput on every configuration of
// the space, given the measured throughput at each probe (in Probes()
// order). The first probe is the base configuration and anchors the
// absolute scale.
func (p *Predictor) Predict(probeThroughput []float64) ([]float64, error) {
	if len(probeThroughput) != len(p.probeIdx) {
		return nil, fmt.Errorf("predict: %d probe values, want %d",
			len(probeThroughput), len(p.probeIdx))
	}
	base := probeThroughput[0]
	if base <= 0 {
		return nil, fmt.Errorf("predict: non-positive base measurement %g", base)
	}
	// Match the normalised probe signature against each centroid.
	best, bestD := -1, math.Inf(1)
	for ci, cent := range p.centroids {
		d := 0.0
		for i, idx := range p.probeIdx {
			// Compare in log space so a 2x error counts the same high
			// or low.
			diff := math.Log(probeThroughput[i]/base) - math.Log(math.Max(cent[idx], 1e-12))
			d += diff * diff
		}
		if d < bestD {
			best, bestD = ci, d
		}
	}
	cent := p.centroids[best]
	out := make([]float64, len(cent))
	for i, v := range cent {
		out[i] = v * base
	}
	return out, nil
}

// Accuracy summarises prediction error over a test set.
type Accuracy struct {
	// Kernels is the number of evaluated test kernels.
	Kernels int
	// MAPE is the mean absolute percentage error over every
	// (kernel, configuration) cell.
	MAPE float64
	// P90APE is the 90th percentile of absolute percentage error.
	P90APE float64
	// WorstKernelMAPE is the worst per-kernel mean error.
	WorstKernelMAPE float64
}

// Evaluate predicts every kernel of a test matrix from its probe cells
// only and scores the prediction against the matrix's full truth.
func Evaluate(p *Predictor, test *sweep.Matrix) (Accuracy, error) {
	if test.Space.Size() != p.space.Size() {
		return Accuracy{}, fmt.Errorf("predict: test space size %d != predictor space %d",
			test.Space.Size(), p.space.Size())
	}
	var all []float64
	worst := 0.0
	for r := range test.Kernels {
		truth := test.Throughput[r]
		probes := make([]float64, len(p.probeIdx))
		for i, idx := range p.probeIdx {
			probes[i] = truth[idx]
		}
		pred, err := p.Predict(probes)
		if err != nil {
			return Accuracy{}, fmt.Errorf("predict: kernel %s: %w", test.Kernels[r], err)
		}
		sum := 0.0
		for c := range truth {
			ape := math.Abs(pred[c]-truth[c]) / truth[c]
			all = append(all, ape)
			sum += ape
		}
		if m := sum / float64(len(truth)); m > worst {
			worst = m
		}
	}
	if len(all) == 0 {
		return Accuracy{}, fmt.Errorf("predict: empty test matrix")
	}
	return Accuracy{
		Kernels:         len(test.Kernels),
		MAPE:            stats.Mean(all),
		P90APE:          stats.Quantile(all, 0.9),
		WorstKernelMAPE: worst,
	}, nil
}

// SplitMatrix partitions a matrix's rows into train (even indices) and
// test (odd indices) halves sharing the same space.
func SplitMatrix(m *sweep.Matrix) (train, test *sweep.Matrix) {
	train = &sweep.Matrix{Space: m.Space}
	test = &sweep.Matrix{Space: m.Space}
	for i := range m.Kernels {
		dst := train
		if i%2 == 1 {
			dst = test
		}
		dst.Kernels = append(dst.Kernels, m.Kernels[i])
		dst.Throughput = append(dst.Throughput, m.Throughput[i])
		dst.TimeNS = append(dst.TimeNS, m.TimeNS[i])
		dst.Bound = append(dst.Bound, m.Bound[i])
	}
	return train, test
}
