package predict

import (
	"fmt"
	"math"

	"gpuscale/internal/stats"
	"gpuscale/internal/sweep"
)

// TrainWithProbes is Train with an explicit probe set (configuration
// indices into Space.Configs()). Index 0 (the base corner) is required
// as the first probe because predictions anchor on it.
func TrainWithProbes(m *sweep.Matrix, k int, seed int64, probeIdx []int) (*Predictor, error) {
	if len(probeIdx) == 0 || probeIdx[0] != 0 {
		return nil, fmt.Errorf("predict: probe set must start with the base configuration (index 0)")
	}
	nCfg := m.Space.Size()
	for _, idx := range probeIdx {
		if idx < 0 || idx >= nCfg {
			return nil, fmt.Errorf("predict: probe index %d outside [0,%d)", idx, nCfg)
		}
	}
	p, err := Train(m, k, seed)
	if err != nil {
		return nil, err
	}
	p.probeIdx = append([]int(nil), probeIdx...)
	return p, nil
}

// SelectProbes greedily chooses numProbes configuration indices that
// minimise the training-set prediction error: starting from the
// mandatory base corner, each step adds the configuration whose
// inclusion most reduces mean absolute percentage error when training
// kernels are predicted from the probe set alone. Candidate positions
// are subsampled by `stride` to keep the search affordable (stride 1
// searches every configuration).
func SelectProbes(m *sweep.Matrix, k int, seed int64, numProbes, stride int) ([]int, error) {
	if numProbes < 2 {
		return nil, fmt.Errorf("predict: need >= 2 probes, got %d", numProbes)
	}
	if stride < 1 {
		stride = 1
	}
	base, err := Train(m, k, seed) // centroids only; probes replaced below
	if err != nil {
		return nil, err
	}
	probes := []int{0}
	for len(probes) < numProbes {
		bestIdx, bestErr := -1, math.Inf(1)
		for cand := 1; cand < m.Space.Size(); cand += stride {
			if containsInt(probes, cand) {
				continue
			}
			trial := append(append([]int(nil), probes...), cand)
			e, err := trainingError(base, m, trial)
			if err != nil {
				return nil, err
			}
			if e < bestErr {
				bestErr, bestIdx = e, cand
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("predict: no candidate probes left")
		}
		probes = append(probes, bestIdx)
	}
	return probes, nil
}

// trainingError predicts every training kernel from the probe subset
// and returns the mean APE against the training truth.
func trainingError(p *Predictor, m *sweep.Matrix, probeIdx []int) (float64, error) {
	trial := &Predictor{space: p.space, probeIdx: probeIdx, centroids: p.centroids}
	var apes []float64
	for r := range m.Kernels {
		truth := m.Throughput[r]
		probes := make([]float64, len(probeIdx))
		for i, idx := range probeIdx {
			probes[i] = truth[idx]
		}
		pred, err := trial.Predict(probes)
		if err != nil {
			return 0, err
		}
		sum := 0.0
		for c := range truth {
			sum += math.Abs(pred[c]-truth[c]) / truth[c]
		}
		apes = append(apes, sum/float64(len(truth)))
	}
	return stats.Mean(apes), nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
