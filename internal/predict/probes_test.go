package predict

import (
	"testing"
)

func TestTrainWithProbesValidation(t *testing.T) {
	m := corpusMatrix(t)
	if _, err := TrainWithProbes(m, 8, 7, nil); err == nil {
		t.Error("empty probe set accepted")
	}
	if _, err := TrainWithProbes(m, 8, 7, []int{1, 2}); err == nil {
		t.Error("probe set without base accepted")
	}
	if _, err := TrainWithProbes(m, 8, 7, []int{0, 99999}); err == nil {
		t.Error("out-of-range probe accepted")
	}
	p, err := TrainWithProbes(m, 8, 7, []int{0, 10, 400})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Probes()); got != 3 {
		t.Fatalf("probes = %d, want 3", got)
	}
}

func TestSelectProbesImprovesOnRandomish(t *testing.T) {
	m := corpusMatrix(t)
	train, test := SplitMatrix(m)

	selected, err := SelectProbes(train, 12, 7, 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(selected) != 5 || selected[0] != 0 {
		t.Fatalf("selected probes = %v", selected)
	}
	seen := map[int]bool{}
	for _, idx := range selected {
		if seen[idx] {
			t.Fatalf("duplicate probe %d in %v", idx, selected)
		}
		seen[idx] = true
	}

	greedy, err := TrainWithProbes(train, 12, 7, selected)
	if err != nil {
		t.Fatal(err)
	}
	accGreedy, err := Evaluate(greedy, test)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately poor probe set: five nearly-identical corner
	// neighbours carry almost no scaling signal.
	bad, err := TrainWithProbes(train, 12, 7, []int{0, 1, 2, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	accBad, err := Evaluate(bad, test)
	if err != nil {
		t.Fatal(err)
	}
	if accGreedy.MAPE >= accBad.MAPE {
		t.Errorf("greedy probes (MAPE %.3f) no better than clustered corner probes (%.3f)",
			accGreedy.MAPE, accBad.MAPE)
	}
	// And they should be competitive with the hand-picked defaults.
	def, err := Train(train, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	accDef, err := Evaluate(def, test)
	if err != nil {
		t.Fatal(err)
	}
	if accGreedy.MAPE > accDef.MAPE*1.2 {
		t.Errorf("greedy probes (MAPE %.3f) much worse than defaults (%.3f)",
			accGreedy.MAPE, accDef.MAPE)
	}
}

func TestSelectProbesErrors(t *testing.T) {
	m := corpusMatrix(t)
	if _, err := SelectProbes(m, 8, 7, 1, 10); err == nil {
		t.Error("single-probe selection accepted")
	}
}
