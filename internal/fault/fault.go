// Package fault provides a deterministic, seed-driven fault injector
// for simulator engines — the test rig that stands in for the flaky
// hardware runs a weeks-long measurement campaign has to survive.
//
// An Injector wraps any gcn.EngineFunc and, per invocation, may inject
// a transient error, corrupt the result (NaN, negative or infinite
// throughput — the "garbage readings" failure mode), stall the call
// for a configurable duration (the "hung run" failure mode), delay it
// by a seeded variable latency (the "slow rig" failure mode overload
// tests lean on), or panic outright (the "driver crash" failure mode
// the executor's recover isolation must absorb). Every decision is a
// pure function of
// (kernel, configuration, attempt number, seed), so a faulty sweep is
// reproducible regardless of worker count or scheduling, and a retry
// of the same cell sees an independent roll — exactly how re-running
// a flaky benchmark behaves.
//
// Beyond the engine, WrapWriter injects torn writes into any
// io.Writer — the journal's power-loss failure mode — cutting a write
// short after a deterministic prefix and returning ErrTornWrite, and
// WrapTransport injects network-shaped faults into any
// http.RoundTripper — dropped responses (the request was delivered,
// the reply was lost), duplicated deliveries, delayed requests, and
// seeded partition windows (symmetric or one-way) — the failure modes
// a distributed lease protocol must absorb without double-completing
// work and a failover protocol must absorb without electing two
// primaries.
package fault

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// ErrInjected is the transient error an Injector returns; retryable by
// construction. Wrapped errors carry the cell and attempt for
// diagnostics, so match with errors.Is.
var ErrInjected = errors.New("fault: injected transient error")

// ErrTornWrite is returned by a WrapWriter writer when an injected
// torn write fires: part of the buffer reached the underlying writer,
// the rest was dropped, emulating power loss mid-append.
var ErrTornWrite = errors.New("fault: injected torn write")

// ErrDroppedResponse is returned by a WrapTransport round trip when a
// dropped-response fault fires: the request WAS delivered and its
// side effects applied, but the reply never reached the client — the
// network failure mode that turns naive retries into duplicates.
var ErrDroppedResponse = errors.New("fault: injected dropped response")

// ErrPartitioned is returned by a WrapTransport round trip while an
// injected network partition window is open. A symmetric partition
// fails the round trip outright (the request never arrived); a
// one-way partition delivers the request — its server-side effects
// apply — and loses the reply, like ErrDroppedResponse but sustained
// over a window, which is the shape that tests failover promotion
// races.
var ErrPartitioned = errors.New("fault: injected network partition")

// ErrWriteFail is returned by a WrapWriter writer when an injected
// write error fires: a deterministic prefix of the buffer reached the
// underlying writer and then the device "filled up" — the ENOSPC
// failure mode, which unlike a torn write reports the error to the
// writer in-process, so the append path's self-healing truncation
// (not just reopen-time salvage) is on trial.
var ErrWriteFail = errors.New("fault: injected write error (device full)")

// Injector describes a fault model. The zero value injects nothing and
// wraps an engine into itself (modulo attempt accounting). Rates are
// probabilities in [0,1] evaluated in order: error, then corruption,
// then stall — at most one fault fires per invocation.
type Injector struct {
	// ErrorRate is the probability an invocation fails with a
	// transient error wrapping ErrInjected.
	ErrorRate float64
	// CorruptRate is the probability an invocation succeeds but
	// returns a corrupted Result (NaN, negative or +Inf throughput,
	// rotating deterministically per cell).
	CorruptRate float64
	// StallRate is the probability an invocation is delayed by Stall
	// before running — emulates a hung run that a per-simulation
	// timeout must reap.
	StallRate float64
	// PanicRate is the probability an invocation panics instead of
	// returning — emulates an engine/driver crash that the executor's
	// recover isolation must convert into a CellFailure.
	PanicRate float64
	// LatencyRate is the probability an invocation is delayed by a
	// deterministic, seeded amount of added latency before running —
	// emulates slow runs (thermal throttling, contended rigs) without
	// real slow engines, so overload tests stay fast and reproducible.
	// Unlike a stall, the delay varies per call: each fired decision
	// picks a duration in (0, Latency] as a pure function of the cell,
	// attempt and seed.
	LatencyRate float64
	// TornWriteRate is the probability a WrapWriter write is cut
	// short: a deterministic prefix reaches the underlying writer and
	// the call returns ErrTornWrite. Independent of the engine-side
	// rates; it never fires through Wrap.
	TornWriteRate float64
	// WriteErrRate is the probability a WrapWriter write fails with
	// ErrWriteFail after a deterministic prefix landed — the ENOSPC /
	// failing-disk model. It shares the torn-write roll stream, so
	// TornWriteRate + WriteErrRate must not exceed 1.
	WriteErrRate float64
	// CorruptRowRate is the probability RowTamper tells a byzantine
	// worker to corrupt one completed row before journaling and
	// shipping it — the lying-fleet-member model distributed
	// attestation exists to catch. The tampered values stay plausible
	// (positive, finite), so only digest comparison against an honest
	// re-execution can expose them. Never fires through Wrap,
	// WrapWriter or WrapTransport.
	CorruptRowRate float64
	// StaleVersion, when non-empty, is the protocol version string a
	// byzantine worker advertises instead of its real one — the
	// mixed-version fleet the coordinator's handshake must fence
	// before a single cell is computed.
	StaleVersion string
	// DropResponseRate is the probability a WrapTransport round trip
	// delivers the request but loses the response: the server applies
	// the request's effects, the client sees ErrDroppedResponse and
	// (typically) retries — the exactly-once drill for idempotent
	// protocols. Independent of the engine-side rates.
	DropResponseRate float64
	// DuplicateRate is the probability a WrapTransport round trip
	// delivers the request twice (the network replayed it); the client
	// sees the second response. The server must treat the first
	// delivery's effects as already applied.
	DuplicateRate float64
	// DelayRate is the probability a WrapTransport round trip is held
	// back by a seeded delay in (0, Delay] before delivery — late
	// lease renewals and slow completes, the stragglers a
	// work-stealing coordinator exists to absorb.
	DelayRate float64
	// PartitionRate is the probability a WrapTransport round trip
	// opens a network-partition window: for the next PartitionFor,
	// every round trip through this transport fails with
	// ErrPartitioned. Whether the window is symmetric (requests never
	// delivered) or one-way (requests delivered, replies lost) is the
	// window roll's sub-decision — both directions of a real partition,
	// deterministically. Rolls its own seeded stream
	// ("partition-stream"), independent of the per-trip network rates.
	PartitionRate float64
	// PartitionFor is the partition window length; defaults to 250ms
	// when PartitionRate is set but PartitionFor is zero.
	PartitionFor time.Duration
	// Stall is the artificial delay applied when a stall fires;
	// defaults to 10ms when a StallRate is set but Stall is zero.
	Stall time.Duration
	// Latency is the maximum added delay when a latency fault fires;
	// defaults to 5ms when a LatencyRate is set but Latency is zero.
	Latency time.Duration
	// Delay is the maximum added network delay when a delay fault
	// fires; defaults to 5ms when a DelayRate is set but Delay is
	// zero.
	Delay time.Duration
	// Seed decorrelates the fault stream; different seeds give
	// different fault patterns, equal seeds identical ones.
	Seed int64
	// OnDecision, when non-nil, is invoked for every fault the
	// injector fires (never for clean invocations), from whichever
	// goroutine runs the simulation — it must be safe for concurrent
	// use and must not block. Observability layers hang counters and
	// trace annotations here; see Observe.
	OnDecision func(Decision)
}

// Kind names the fault a decision injected.
type Kind uint8

const (
	// KindError is a transient error wrapping ErrInjected.
	KindError Kind = iota
	// KindCorrupt is a corrupted (NaN/negative/Inf) result.
	KindCorrupt
	// KindStall is an artificial pre-run delay.
	KindStall
	// KindPanic is an injected engine panic.
	KindPanic
	// KindTornWrite is an injected short write through WrapWriter.
	KindTornWrite
	// KindLatency is an injected seeded pre-run delay.
	KindLatency
	// KindDropResponse is a delivered request whose response was lost
	// (WrapTransport).
	KindDropResponse
	// KindDuplicate is a request delivered twice (WrapTransport).
	KindDuplicate
	// KindDelay is a seeded network delay before delivery
	// (WrapTransport).
	KindDelay
	// KindWriteErr is an injected write failure (ENOSPC model) through
	// WrapWriter.
	KindWriteErr
	// KindCorruptRow is a RowTamper decision to corrupt a completed
	// row's planes before journal and wire.
	KindCorruptRow
	// KindPartition is a WrapTransport decision to open a network
	// partition window (symmetric or one-way).
	KindPartition
)

var kindNames = [...]string{"error", "corrupt", "stall", "panic", "torn-write", "latency",
	"drop-response", "duplicate", "delay", "write-error", "corrupt-row", "partition"}

// String returns the kind's lower-case name.
func (k Kind) String() string {
	if int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Decision records one fired fault: which cell, which attempt, what
// was injected. Corrupt decisions fire at roll time even if the
// wrapped engine then fails on its own — the decision is the
// injector's, the outcome the engine's.
type Decision struct {
	// Kernel and Config identify the cell. Torn-write and network
	// decisions have no cell: Kernel is empty and Config zero.
	Kernel string
	Config hw.Config
	// Attempt is the cell's 0-based invocation counter — or, for
	// torn-write and network decisions, the writer's/transport's
	// 0-based sequence number.
	Attempt uint64
	// Kind is the injected fault.
	Kind Kind
}

// Validate checks the rates are sane probabilities.
func (in Injector) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"ErrorRate", in.ErrorRate}, {"CorruptRate", in.CorruptRate}, {"StallRate", in.StallRate},
		{"PanicRate", in.PanicRate}, {"LatencyRate", in.LatencyRate}, {"TornWriteRate", in.TornWriteRate},
		{"WriteErrRate", in.WriteErrRate}, {"CorruptRowRate", in.CorruptRowRate},
		{"DropResponseRate", in.DropResponseRate}, {"DuplicateRate", in.DuplicateRate},
		{"DelayRate", in.DelayRate}, {"PartitionRate", in.PartitionRate}} {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return fmt.Errorf("fault: %s %g outside [0,1]", r.name, r.v)
		}
	}
	// Engine-side kinds share one roll; the torn-write stream is
	// independent and only bounded by [0,1] above.
	if sum := in.ErrorRate + in.CorruptRate + in.StallRate + in.PanicRate + in.LatencyRate; sum > 1 {
		return fmt.Errorf("fault: engine rates sum to %g > 1", sum)
	}
	// Writer kinds share one roll per write.
	if sum := in.TornWriteRate + in.WriteErrRate; sum > 1 {
		return fmt.Errorf("fault: writer rates sum to %g > 1", sum)
	}
	// Network kinds share one roll per round trip.
	if sum := in.DropResponseRate + in.DuplicateRate + in.DelayRate; sum > 1 {
		return fmt.Errorf("fault: network rates sum to %g > 1", sum)
	}
	return nil
}

// Active reports whether the injector can fire through Wrap at all.
// TornWriteRate does not count: it fires through WrapWriter, not the
// engine path.
func (in Injector) Active() bool {
	return in.ErrorRate > 0 || in.CorruptRate > 0 || in.StallRate > 0 || in.PanicRate > 0 || in.LatencyRate > 0
}

// Wrap returns an engine that runs sim under this fault model. The
// returned engine tracks attempt counts per (kernel, configuration)
// cell and is safe for concurrent use; wrap once per sweep so retries
// of a cell advance its attempt counter.
func (in Injector) Wrap(sim gcn.EngineFunc) gcn.EngineFunc {
	if !in.Active() {
		return sim
	}
	st := in.newState()
	return func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
		return st.invoke(k.Name, cfg, func() (gcn.Result, error) { return sim(k, cfg) })
	}
}

// WrapRow returns a row engine that runs re under this fault model.
// Decisions are the same pure function of (kernel, configuration,
// attempt, seed) that Wrap uses, so a sweep sees identical faults on
// the row path and the per-cell path given the same invocation
// sequence. One attempt counter per cell is shared across every row
// the returned engine prepares — and across any per-cell fallback
// built over it with gcn.PerCell — so retries keep advancing the same
// stream no matter which path evaluates them. PrepareRow itself never
// faults: the model covers engine invocations, not kernel analysis.
func (in Injector) WrapRow(re gcn.RowEngine) gcn.RowEngine {
	if !in.Active() {
		return re
	}
	return &faultRowEngine{st: in.newState(), re: re}
}

// faultState is the per-Wrap/WrapRow shared decision state: the model,
// the resolved stall and latency durations, and the cross-cell attempt
// counters.
type faultState struct {
	in       Injector
	stall    time.Duration
	latency  time.Duration
	attempts sync.Map // cell key -> *attemptCounter
}

func (in Injector) newState() *faultState {
	stall := in.Stall
	if stall <= 0 {
		stall = 10 * time.Millisecond
	}
	latency := in.Latency
	if latency <= 0 {
		latency = 5 * time.Millisecond
	}
	return &faultState{in: in, stall: stall, latency: latency}
}

// invoke rolls one fault decision for the cell's next attempt and runs
// call under it — the single implementation behind Wrap and WrapRow.
func (s *faultState) invoke(name string, cfg hw.Config, call func() (gcn.Result, error)) (gcn.Result, error) {
	key := cellKey(name, cfg)
	v, _ := s.attempts.LoadOrStore(key, new(attemptCounter))
	attempt := v.(*attemptCounter).next()
	in := s.in
	roll, sub := in.roll(name, cfg, attempt)
	switch {
	case roll < in.ErrorRate:
		in.decided(name, cfg, attempt, KindError)
		// The caller (CellFailure) already names the cell; only the
		// attempt number is new information here.
		return gcn.Result{}, fmt.Errorf("attempt %d: %w", attempt, ErrInjected)
	case roll < in.ErrorRate+in.CorruptRate:
		in.decided(name, cfg, attempt, KindCorrupt)
		r, err := call()
		if err != nil {
			return r, err
		}
		return corrupt(r, sub), nil
	case roll < in.ErrorRate+in.CorruptRate+in.StallRate:
		in.decided(name, cfg, attempt, KindStall)
		time.Sleep(s.stall)
	case roll < in.ErrorRate+in.CorruptRate+in.StallRate+in.PanicRate:
		in.decided(name, cfg, attempt, KindPanic)
		panic(fmt.Sprintf("fault: injected engine panic (%s attempt %d)", key, attempt))
	case roll < in.ErrorRate+in.CorruptRate+in.StallRate+in.PanicRate+in.LatencyRate:
		in.decided(name, cfg, attempt, KindLatency)
		// The delay is a pure function of the same roll that fired the
		// fault: (0, Latency] in 1% steps, reproducible per cell/attempt.
		time.Sleep(s.latency * time.Duration(1+sub%100) / 100)
	}
	return call()
}

// faultRowEngine wraps a RowEngine with a shared fault state.
type faultRowEngine struct {
	st *faultState
	re gcn.RowEngine
}

func (f *faultRowEngine) PrepareRow(k *kernel.Kernel) (gcn.PreparedRow, error) {
	pr, err := f.re.PrepareRow(k)
	if err != nil {
		return nil, err
	}
	fr := faultRow{st: f.st, name: k.Name, pr: pr}
	if br, ok := pr.(gcn.BatchRow); ok {
		// Only advertise the batch seam when the row underneath has it,
		// so wrapping never upgrades an engine's capabilities.
		return &faultBatchRow{faultRow: fr, br: br}, nil
	}
	return &fr, nil
}

// faultRow interposes the fault roll on every Eval; Stats passes
// through to the prepared row underneath.
type faultRow struct {
	st   *faultState
	name string
	pr   gcn.PreparedRow
}

func (f *faultRow) Eval(cfg hw.Config) (gcn.Result, error) {
	return f.st.invoke(f.name, cfg, func() (gcn.Result, error) { return f.pr.Eval(cfg) })
}

func (f *faultRow) Stats() gcn.PreparedStats { return f.pr.Stats() }

// faultBatchRow additionally exposes the batch seam when the wrapped
// row has one.
type faultBatchRow struct {
	faultRow
	br gcn.BatchRow
}

// EvalBatch implements gcn.BatchRow under the fault model: the
// underlying batch evaluates every cell once, then the injector rolls
// one decision per cell in config order and overlays it on the cell's
// outcome. Each roll advances the same per-cell attempt counter and is
// the same pure function of (kernel, configuration, attempt, seed)
// that Eval rolls, so a sweep draws an identical fault stream whether
// a row's first attempts run batched or per-cell — and retries, which
// always run per-cell, continue each cell's stream seamlessly.
func (f *faultBatchRow) EvalBatch(cfgs []hw.Config, out []gcn.Result, errs []error) error {
	if err := f.br.EvalBatch(cfgs, out, errs); err != nil {
		return err
	}
	for i := range cfgs {
		f.st.overlay(f.name, cfgs[i], &out[i], &errs[i])
	}
	return nil
}

// overlay applies one rolled fault decision to an already-computed
// batched outcome, mirroring invoke kind for kind. The mechanics
// differ only where a batch forces them to: an injected panic cannot
// unwind the stack without losing the rest of the row, so it surfaces
// as an error wrapping gcn.ErrBatchPanic — which the sweep maps onto
// the same final engine-panic classification the per-cell recover
// produces — and stall/latency sleeps happen after the engine ran
// rather than before (the delay reaches the caller either way).
func (s *faultState) overlay(name string, cfg hw.Config, r *gcn.Result, cellErr *error) {
	key := cellKey(name, cfg)
	v, _ := s.attempts.LoadOrStore(key, new(attemptCounter))
	attempt := v.(*attemptCounter).next()
	in := s.in
	roll, sub := in.roll(name, cfg, attempt)
	switch {
	case roll < in.ErrorRate:
		in.decided(name, cfg, attempt, KindError)
		*r = gcn.Result{}
		*cellErr = fmt.Errorf("attempt %d: %w", attempt, ErrInjected)
	case roll < in.ErrorRate+in.CorruptRate:
		in.decided(name, cfg, attempt, KindCorrupt)
		// Like invoke: corruption only lands on a result the engine
		// actually produced; an engine-side failure passes through.
		if *cellErr == nil {
			*r = corrupt(*r, sub)
		}
	case roll < in.ErrorRate+in.CorruptRate+in.StallRate:
		in.decided(name, cfg, attempt, KindStall)
		time.Sleep(s.stall)
	case roll < in.ErrorRate+in.CorruptRate+in.StallRate+in.PanicRate:
		in.decided(name, cfg, attempt, KindPanic)
		*r = gcn.Result{}
		*cellErr = fmt.Errorf("%w: fault: injected engine panic (%s attempt %d)", gcn.ErrBatchPanic, key, attempt)
	case roll < in.ErrorRate+in.CorruptRate+in.StallRate+in.PanicRate+in.LatencyRate:
		in.decided(name, cfg, attempt, KindLatency)
		time.Sleep(s.latency * time.Duration(1+sub%100) / 100)
	}
}

// WrapWriter returns a writer that injects torn writes into w at
// TornWriteRate and write errors (the ENOSPC model) at WriteErrRate.
// When a tear fires, a deterministic prefix of the buffer (possibly
// empty) is written through and the call returns ErrTornWrite — the
// caller sees the same partial-append state a power loss would leave
// on disk. When a write error fires, the same deterministic prefix
// lands and the call returns ErrWriteFail — the disk filled up
// mid-record, and the partial bytes are the caller's to clean up.
// Decisions are a pure function of (seed, write sequence), so a given
// writer faults at the same writes every run. The returned writer is
// safe for concurrent use; with both rates zero, w is returned
// unchanged.
func (in Injector) WrapWriter(w io.Writer) io.Writer {
	if in.TornWriteRate <= 0 && in.WriteErrRate <= 0 {
		return w
	}
	return &tornWriter{in: in, w: w}
}

// tornWriter is the WrapWriter implementation: a write-sequence
// counter drives the same splitmix-finished roll the engine path
// uses, under a distinct stream label so engine and writer faults
// stay decorrelated. Torn writes and write errors share the roll:
// at most one fires per write.
type tornWriter struct {
	in  Injector
	mu  sync.Mutex
	w   io.Writer
	seq uint64
}

func (t *tornWriter) Write(b []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	seq := t.seq
	t.seq++
	roll, sub := t.in.roll("torn-write-stream", hw.Config{}, seq)
	if roll >= t.in.TornWriteRate+t.in.WriteErrRate || len(b) == 0 {
		return t.w.Write(b)
	}
	kind, failure := KindTornWrite, ErrTornWrite
	if roll >= t.in.TornWriteRate {
		kind, failure = KindWriteErr, ErrWriteFail
	}
	t.in.decided("", hw.Config{}, seq, kind)
	n, err := t.w.Write(b[:int(sub)%len(b)])
	if err != nil {
		return n, err
	}
	return n, failure
}

// RowTamper rolls a byzantine row-corruption decision for one
// completed row: key identifies the row (job plus kernel is the
// natural choice), seq distinguishes repeat executions. It returns
// whether the caller should tamper with the row before journaling and
// shipping it, plus a sub-roll to pick the corruption shape. The
// decision is a pure function of (key, seq, seed) under its own
// stream label, so a lying worker lies about the same rows on every
// replay — which is what makes a byzantine soak reproducible from its
// seed.
func (in Injector) RowTamper(key string, seq uint64) (bool, uint64) {
	if in.CorruptRowRate <= 0 {
		return false, 0
	}
	roll, sub := in.roll("byzantine-row-stream|"+key, hw.Config{}, seq)
	if roll >= in.CorruptRowRate {
		return false, 0
	}
	in.decided(key, hw.Config{}, seq, KindCorruptRow)
	return true, sub
}

// NetworkActive reports whether the injector can fire through
// WrapTransport at all. Like TornWriteRate, the network rates are
// independent of the engine path and never fire through Wrap.
func (in Injector) NetworkActive() bool {
	return in.DropResponseRate > 0 || in.DuplicateRate > 0 || in.DelayRate > 0 || in.PartitionRate > 0
}

// WrapTransport returns a round tripper that injects network-shaped
// faults into rt: dropped responses (request delivered, reply lost,
// the call returns ErrDroppedResponse), duplicated deliveries (the
// request reaches the server twice; the caller sees the second
// response), and seeded delays in (0, Delay] before delivery.
// Decisions are a pure function of (seed, round-trip sequence) under a
// distinct stream label, so a given transport faults at the same
// round trips every run. At most one fault fires per round trip. The
// returned transport is safe for concurrent use; when no network rate
// is set, rt is returned unchanged. A nil rt means
// http.DefaultTransport.
func (in Injector) WrapTransport(rt http.RoundTripper) http.RoundTripper {
	if !in.NetworkActive() {
		if rt == nil {
			return http.DefaultTransport
		}
		return rt
	}
	if rt == nil {
		rt = http.DefaultTransport
	}
	delay := in.Delay
	if delay <= 0 {
		delay = 5 * time.Millisecond
	}
	return &netTransport{in: in, rt: rt, delay: delay}
}

// netTransport is the WrapTransport implementation: a round-trip
// sequence counter drives the same splitmix-finished roll the engine
// path uses, under the "net-stream" label so network faults stay
// decorrelated from engine and writer faults.
type netTransport struct {
	in    Injector
	rt    http.RoundTripper
	delay time.Duration
	mu    sync.Mutex
	seq   uint64
	// Partition window state: partSeq numbers the window rolls (its
	// own stream, so adding PartitionRate never shifts the per-trip
	// fault pattern), partUntil is when the open window closes,
	// partOneWay its direction.
	partSeq    uint64
	partUntil  time.Time
	partOneWay bool
}

func (t *netTransport) next() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.seq
	t.seq++
	return n
}

// partitionState reports whether a partition window is open for this
// round trip, opening a new one when its roll fires.
func (t *netTransport) partitionState() (open, oneWay bool) {
	if t.in.PartitionRate <= 0 {
		return false, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	if now.Before(t.partUntil) {
		return true, t.partOneWay
	}
	seq := t.partSeq
	t.partSeq++
	roll, sub := t.in.roll("partition-stream", hw.Config{}, seq)
	if roll >= t.in.PartitionRate {
		return false, false
	}
	dur := t.in.PartitionFor
	if dur <= 0 {
		dur = 250 * time.Millisecond
	}
	t.partUntil = now.Add(dur)
	t.partOneWay = sub&1 == 1
	t.in.decided("", hw.Config{}, seq, KindPartition)
	return true, t.partOneWay
}

func (t *netTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if open, oneWay := t.partitionState(); open {
		if !oneWay {
			// Symmetric: the request never crosses; no server-side
			// effects.
			return nil, fmt.Errorf("%w (symmetric)", ErrPartitioned)
		}
		// One-way: deliver for real — the server applies the effects —
		// then lose the reply, sustained for the window.
		resp, err := t.rt.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%w (one-way)", ErrPartitioned)
	}
	seq := t.next()
	in := t.in
	roll, sub := in.roll("net-stream", hw.Config{}, seq)
	switch {
	case roll < in.DropResponseRate:
		// Deliver the request for real — its server-side effects must
		// apply — then lose the reply. A transport-level failure on the
		// delivery itself surfaces as-is: nothing was applied, so the
		// drop would prove nothing.
		resp, err := t.rt.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		in.decided("", hw.Config{}, seq, KindDropResponse)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, ErrDroppedResponse
	case roll < in.DropResponseRate+in.DuplicateRate:
		in.decided("", hw.Config{}, seq, KindDuplicate)
		return t.duplicate(req)
	case roll < in.DropResponseRate+in.DuplicateRate+in.DelayRate:
		in.decided("", hw.Config{}, seq, KindDelay)
		// Same (0, max] in 1% steps as the engine latency fault.
		timer := time.NewTimer(t.delay * time.Duration(1+sub%100) / 100)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	return t.rt.RoundTrip(req)
}

// duplicate delivers req twice and returns the second response — the
// network replayed the request; the server must treat the first
// delivery's effects as already applied. The body is buffered so both
// deliveries carry it. A failed first delivery is ignored (the replay
// still goes out, as a real network would).
func (t *netTransport) duplicate(req *http.Request) (*http.Response, error) {
	var body []byte
	if req.Body != nil {
		b, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("fault: buffering request body for duplicate: %w", err)
		}
		body = b
	}
	send := func() (*http.Response, error) {
		r := req.Clone(req.Context())
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
			r.GetBody = func() (io.ReadCloser, error) {
				return io.NopCloser(bytes.NewReader(body)), nil
			}
		}
		return t.rt.RoundTrip(r)
	}
	if first, err := send(); err == nil {
		io.Copy(io.Discard, first.Body)
		first.Body.Close()
	}
	return send()
}

// decided reports one fired fault to the OnDecision hook, if any.
func (in Injector) decided(name string, cfg hw.Config, attempt uint64, kind Kind) {
	if in.OnDecision != nil {
		in.OnDecision(Decision{Kernel: name, Config: cfg, Attempt: attempt, Kind: kind})
	}
}

// attemptCounter is a per-cell attempt sequence. Retries of one cell
// are sequential within a sweep worker, but the wrapper stays safe for
// arbitrary concurrent callers.
type attemptCounter struct {
	mu sync.Mutex
	n  uint64
}

func (c *attemptCounter) next() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.n
	c.n++
	return n
}

// cellKey identifies one (kernel, configuration) cell.
func cellKey(name string, cfg hw.Config) string {
	return fmt.Sprintf("%s|%d|%g|%g", name, cfg.CUs, cfg.CoreClockMHz, cfg.MemClockMHz)
}

// roll derives the uniform fault roll for one invocation plus a small
// sub-roll used to pick the corruption mode. FNV-1a over the cell
// identity, seed, and attempt keeps the stream deterministic and
// independent of scheduling.
func (in Injector) roll(name string, cfg hw.Config, attempt uint64) (float64, uint64) {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%g|%g|%d|%d", name, cfg.CUs, cfg.CoreClockMHz, cfg.MemClockMHz, in.Seed, attempt)
	s := h.Sum64()
	// splitmix64 finisher: FNV output over similar inputs is not
	// uniform enough on its own for rate thresholds.
	s ^= s >> 30
	s *= 0xbf58476d1ce4e5b9
	s ^= s >> 27
	s *= 0x94d049bb133111eb
	s ^= s >> 31
	return float64(s>>11) / (1 << 53), s & 0xff
}

// corrupt damages a good result in one of three deterministic ways.
func corrupt(r gcn.Result, sub uint64) gcn.Result {
	switch sub % 3 {
	case 0:
		r.Throughput = math.NaN()
	case 1:
		r.Throughput = -r.Throughput
	default:
		r.Throughput = math.Inf(1)
	}
	return r
}
