package fault

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpuscale/internal/hw"
)

// partitionErr performs one post and requires it to fail with
// ErrPartitioned, returning the full error text (which names the
// direction).
func partitionErr(t *testing.T, c *http.Client, url string) string {
	t.Helper()
	_, err := post(t, c, url, "x")
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("want ErrPartitioned, got %v", err)
	}
	return err.Error()
}

// findPartitionSeed scans seeds until the first partition window of
// that seed has the wanted direction — directions are a deterministic
// sub-decision of the seeded window roll, so both must occur across a
// small seed range.
func findPartitionSeed(t *testing.T, oneWay bool) int64 {
	t.Helper()
	for seed := int64(1); seed <= 64; seed++ {
		in := Injector{PartitionRate: 1, PartitionFor: time.Minute, Seed: seed}
		_, sub := in.roll("partition-stream", hw.Config{}, 0)
		if (sub&1 == 1) == oneWay {
			return seed
		}
	}
	t.Fatalf("no seed in [1,64] opens a oneWay=%v window — direction sub-decision broken", oneWay)
	return 0
}

func TestPartitionSymmetricNeverDelivers(t *testing.T) {
	srv := &transportServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	seed := findPartitionSeed(t, false)
	in := Injector{PartitionRate: 1, PartitionFor: time.Minute, Seed: seed}
	c := &http.Client{Transport: in.WrapTransport(nil)}
	for i := 0; i < 3; i++ {
		msg := partitionErr(t, c, ts.URL)
		if !strings.Contains(msg, "symmetric") {
			t.Fatalf("seed %d should open a symmetric window, got %q", seed, msg)
		}
	}
	if n := len(srv.deliveries()); n != 0 {
		t.Fatalf("symmetric partition must never deliver, server saw %d requests", n)
	}
}

func TestPartitionOneWayDeliversAndLosesReply(t *testing.T) {
	srv := &transportServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	seed := findPartitionSeed(t, true)
	in := Injector{PartitionRate: 1, PartitionFor: time.Minute, Seed: seed}
	c := &http.Client{Transport: in.WrapTransport(nil)}
	for i := 0; i < 3; i++ {
		msg := partitionErr(t, c, ts.URL)
		if !strings.Contains(msg, "one-way") {
			t.Fatalf("seed %d should open a one-way window, got %q", seed, msg)
		}
	}
	// One-way means every request's server-side effects applied even
	// though the caller saw only errors — the duplicate-making shape.
	if n := len(srv.deliveries()); n != 3 {
		t.Fatalf("one-way partition should deliver every request, server saw %d of 3", n)
	}
}

// TestPartitionWindowExpires: after PartitionFor, the window closes
// and (with a rate below 1) traffic flows again on the next clean
// roll.
func TestPartitionWindowExpires(t *testing.T) {
	srv := &transportServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	seed := findPartitionSeed(t, false)
	in := Injector{PartitionRate: 1, PartitionFor: 30 * time.Millisecond, Seed: seed}
	rt := in.WrapTransport(nil).(*netTransport)
	c := &http.Client{Transport: rt}
	partitionErr(t, c, ts.URL)
	time.Sleep(50 * time.Millisecond)
	// The window expired; force the next roll clean so the trip goes
	// through (rate 1 would immediately reopen).
	rt.mu.Lock()
	rt.in.PartitionRate = 0
	rt.mu.Unlock()
	if body, err := post(t, c, ts.URL, "after"); err != nil || body != "ok:after" {
		t.Fatalf("post after window expiry: %q %v", body, err)
	}
}

// TestPartitionStreamIndependent: the partition stream rolls
// separately from the per-trip network stream, so (a) rates need not
// sum with the per-trip rates, and (b) enabling partitions does not
// reshuffle which trips the other faults hit.
func TestPartitionStreamIndependent(t *testing.T) {
	if err := (Injector{DropResponseRate: 0.9, DuplicateRate: 0.1, PartitionRate: 0.9}).Validate(); err != nil {
		t.Fatalf("partition rate must not count against the shared network budget: %v", err)
	}
	if err := (Injector{PartitionRate: 1.5}).Validate(); err == nil {
		t.Fatal("PartitionRate outside [0,1] should fail validation")
	}
	if !(Injector{PartitionRate: 0.1}).NetworkActive() {
		t.Fatal("a partition-only injector must activate WrapTransport")
	}

	// Same seed, same per-trip rates: the trip-level fault pattern must
	// be identical whether or not partitions are configured (rate ~0:
	// the stream exists but never fires).
	run := func(in Injector) []string {
		srv := &transportServer{}
		ts := httptest.NewServer(srv.handler())
		defer ts.Close()
		c := &http.Client{Transport: in.WrapTransport(nil)}
		var pattern []string
		for i := 0; i < 12; i++ {
			_, err := post(t, c, ts.URL, "p")
			switch {
			case err == nil:
				pattern = append(pattern, "ok")
			case errors.Is(err, ErrDroppedResponse):
				pattern = append(pattern, "drop")
			default:
				pattern = append(pattern, "other")
			}
		}
		return pattern
	}
	base := run(Injector{DropResponseRate: 0.4, Seed: 7})
	with := run(Injector{DropResponseRate: 0.4, PartitionRate: 1e-12, Seed: 7})
	for i := range base {
		if base[i] != with[i] {
			t.Fatalf("trip %d fault changed when partitions were configured: %q -> %q\nbase %v\nwith %v",
				i, base[i], with[i], base, with)
		}
	}
}
