package fault

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"gpuscale/internal/gcn"
	"gpuscale/internal/obs"
)

func TestOnDecisionFiresForEveryFault(t *testing.T) {
	ks, cfgs := testCells(t)
	var mu sync.Mutex
	var decisions []Decision
	in := Injector{
		ErrorRate: 0.15, CorruptRate: 0.15, Seed: 3,
		OnDecision: func(d Decision) {
			mu.Lock()
			decisions = append(decisions, d)
			mu.Unlock()
		},
	}
	eng := in.Wrap(gcn.Simulate)
	faults := 0
	for _, k := range ks {
		for _, cfg := range cfgs {
			r, err := eng(k, cfg)
			if err != nil || !(r.Throughput > 0) || math.IsInf(r.Throughput, 0) {
				faults++
			}
		}
	}
	if faults == 0 {
		t.Fatal("30% combined rate fired nothing; test proves nothing")
	}
	if len(decisions) != faults {
		t.Fatalf("hook saw %d decisions, outcomes show %d faults", len(decisions), faults)
	}
	for _, d := range decisions {
		if d.Kernel == "" || (d.Kind != KindError && d.Kind != KindCorrupt) {
			t.Fatalf("malformed decision %+v", d)
		}
	}
}

func TestOnDecisionDoesNotChangeFaultPattern(t *testing.T) {
	ks, cfgs := testCells(t)
	base := Injector{ErrorRate: 0.2, Seed: 9}
	hooked := base
	hooked.OnDecision = func(Decision) {}
	a := faultPattern(t, base, ks, cfgs)
	b := faultPattern(t, hooked, ks, cfgs)
	for cell, fa := range a {
		if b[cell] != fa {
			t.Fatalf("hook changed fault pattern at %s", cell)
		}
	}
}

func TestObserveCountsByKindAndEmitsSpans(t *testing.T) {
	ks, cfgs := testCells(t)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)
	in := Injector{ErrorRate: 0.1, CorruptRate: 0.1, Seed: 7, OnDecision: Observe(reg, tw)}
	eng := in.Wrap(gcn.Simulate)
	for _, k := range ks {
		for _, cfg := range cfgs {
			eng(k, cfg) //nolint:errcheck // outcomes audited via counters
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	errs := reg.Counter(MetricInjected, "", obs.L("kind", "error")).Value()
	corrupts := reg.Counter(MetricInjected, "", obs.L("kind", "corrupt")).Value()
	if errs == 0 || corrupts == 0 {
		t.Fatalf("counters: error=%d corrupt=%d, want both > 0", errs, corrupts)
	}
	evs, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	spans := uint64(0)
	for _, e := range evs {
		if e.Name != "fault" || e.Phase != "i" {
			t.Fatalf("unexpected event %+v", e)
		}
		if e.Args["kernel"] == nil || e.Args["kind"] == nil {
			t.Fatalf("fault span missing keys: %v", e.Args)
		}
		spans++
	}
	if spans != errs+corrupts {
		t.Fatalf("%d spans for %d counted faults", spans, errs+corrupts)
	}
	// A stall series exists at zero even though none fired.
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `fault_injected_total{kind="stall"} 0`) {
		t.Fatalf("stall series not pre-registered:\n%s", sb.String())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindError: "error", KindCorrupt: "corrupt", KindStall: "stall",
		KindWriteErr: "write-error", KindCorruptRow: "corrupt-row", Kind(99): "kind(99)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
