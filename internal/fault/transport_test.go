package fault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// transportServer counts deliveries and echoes request bodies so tests
// can prove a request reached the server even when its response was
// dropped or replayed.
type transportServer struct {
	mu     sync.Mutex
	bodies []string
}

func (s *transportServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		s.mu.Lock()
		s.bodies = append(s.bodies, string(b))
		s.mu.Unlock()
		io.WriteString(w, "ok:"+string(b))
	})
}

func (s *transportServer) deliveries() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.bodies...)
}

// post sends one POST through the client and returns (body, err),
// draining and closing the response when there is one.
func post(t *testing.T, c *http.Client, url, payload string) (string, error) {
	t.Helper()
	resp, err := c.Post(url, "text/plain", strings.NewReader(payload))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return string(b), nil
}

func TestWrapTransportInactivePassthrough(t *testing.T) {
	var rt http.RoundTripper = http.DefaultTransport
	if got := (Injector{}).WrapTransport(rt); got != rt {
		t.Fatalf("inactive injector should return rt unchanged, got %T", got)
	}
	if got := (Injector{}).WrapTransport(nil); got != http.DefaultTransport {
		t.Fatalf("nil rt should default to http.DefaultTransport, got %T", got)
	}
}

func TestWrapTransportDroppedResponse(t *testing.T) {
	srv := &transportServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	in := Injector{DropResponseRate: 1, Seed: 1}
	c := &http.Client{Transport: in.WrapTransport(nil)}
	_, err := post(t, c, ts.URL, "hello")
	if !errors.Is(err, ErrDroppedResponse) {
		t.Fatalf("want ErrDroppedResponse, got %v", err)
	}
	// The request WAS delivered: that is the whole point of the fault.
	if got := srv.deliveries(); len(got) != 1 || got[0] != "hello" {
		t.Fatalf("server should have seen exactly one delivery, got %q", got)
	}
}

func TestWrapTransportDuplicateDelivery(t *testing.T) {
	srv := &transportServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	in := Injector{DuplicateRate: 1, Seed: 1}
	c := &http.Client{Transport: in.WrapTransport(nil)}
	body, err := post(t, c, ts.URL, "payload")
	if err != nil {
		t.Fatalf("duplicate delivery should still return a response: %v", err)
	}
	if body != "ok:payload" {
		t.Fatalf("unexpected response body %q", body)
	}
	got := srv.deliveries()
	if len(got) != 2 || got[0] != "payload" || got[1] != "payload" {
		t.Fatalf("server should have seen the same body twice, got %q", got)
	}
}

func TestWrapTransportDelayBounded(t *testing.T) {
	srv := &transportServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	max := 20 * time.Millisecond
	in := Injector{DelayRate: 1, Delay: max, Seed: 7}
	c := &http.Client{Transport: in.WrapTransport(nil)}
	start := time.Now()
	if _, err := post(t, c, ts.URL, "x"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > max+200*time.Millisecond {
		t.Fatalf("delay wildly exceeded bound: %v > %v", elapsed, max)
	}
	if got := srv.deliveries(); len(got) != 1 {
		t.Fatalf("delayed request should be delivered exactly once, got %d", len(got))
	}
}

func TestWrapTransportDeterministicPerSeed(t *testing.T) {
	srv := &transportServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	pattern := func(seed int64) []string {
		var kinds []string
		var mu sync.Mutex
		in := Injector{DropResponseRate: 0.3, DuplicateRate: 0.3, Seed: seed,
			OnDecision: func(d Decision) {
				mu.Lock()
				kinds = append(kinds, d.Kind.String())
				mu.Unlock()
			}}
		c := &http.Client{Transport: in.WrapTransport(nil)}
		for i := 0; i < 24; i++ {
			if _, err := post(t, c, ts.URL, "x"); err != nil && !errors.Is(err, ErrDroppedResponse) {
				t.Fatal(err)
			}
		}
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), kinds...)
	}
	a, b := pattern(3), pattern(3)
	if len(a) == 0 {
		t.Fatal("expected some faults to fire at 60% combined rate over 24 calls")
	}
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("same seed should fault identically:\n%v\n%v", a, b)
	}
	if c := pattern(4); strings.Join(a, ",") == strings.Join(c, ",") && len(a) == 24 {
		t.Fatalf("different seeds should decorrelate, both fired on every call: %v", c)
	}
}

func TestWrapTransportConcurrentSafe(t *testing.T) {
	srv := &transportServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	in := Injector{DropResponseRate: 0.2, DuplicateRate: 0.2, DelayRate: 0.2,
		Delay: time.Millisecond, Seed: 9}
	c := &http.Client{Transport: in.WrapTransport(nil)}
	var wg sync.WaitGroup
	var errs atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := post(t, c, ts.URL, "x"); err != nil {
					if !errors.Is(err, ErrDroppedResponse) {
						errs.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	if n := errs.Load(); n != 0 {
		t.Fatalf("%d unexpected transport errors", n)
	}
}

func TestValidateNetworkRates(t *testing.T) {
	if err := (Injector{DropResponseRate: 1.5}).Validate(); err == nil {
		t.Fatal("DropResponseRate > 1 should fail validation")
	}
	if err := (Injector{DuplicateRate: -0.1}).Validate(); err == nil {
		t.Fatal("negative DuplicateRate should fail validation")
	}
	if err := (Injector{DropResponseRate: 0.5, DuplicateRate: 0.4, DelayRate: 0.3}).Validate(); err == nil {
		t.Fatal("network rates summing past 1 should fail validation")
	}
	if err := (Injector{DropResponseRate: 0.3, DuplicateRate: 0.3, DelayRate: 0.3}).Validate(); err != nil {
		t.Fatalf("valid network rates rejected: %v", err)
	}
}
