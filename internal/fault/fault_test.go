package fault

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

func testCells(t *testing.T) ([]*kernel.Kernel, []hw.Config) {
	t.Helper()
	space, err := hw.NewSpace([]int{4, 24, 44}, []float64{200, 600, 1000}, []float64{150, 700, 1250})
	if err != nil {
		t.Fatal(err)
	}
	ks := []*kernel.Kernel{
		kernel.New("s", "p", "a").Geometry(512, 256).MustBuild(),
		kernel.New("s", "p", "b").Geometry(512, 256).Compute(30000, 100).MustBuild(),
	}
	return ks, space.Configs()
}

// faultPattern sweeps every cell once through a fresh wrap and records
// which cells errored.
func faultPattern(t *testing.T, in Injector, ks []*kernel.Kernel, cfgs []hw.Config) map[string]bool {
	t.Helper()
	eng := in.Wrap(gcn.Simulate)
	out := map[string]bool{}
	for _, k := range ks {
		for _, cfg := range cfgs {
			_, err := eng(k, cfg)
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected non-injected error: %v", err)
			}
			out[cellKey(k.Name, cfg)] = err != nil
		}
	}
	return out
}

func TestInjectorDeterministicPerSeed(t *testing.T) {
	ks, cfgs := testCells(t)
	in := Injector{ErrorRate: 0.3, Seed: 7}
	a := faultPattern(t, in, ks, cfgs)
	b := faultPattern(t, in, ks, cfgs)
	same := true
	for k, v := range a {
		if b[k] != v {
			same = false
		}
	}
	if !same {
		t.Fatal("same seed produced different fault patterns")
	}
	c := faultPattern(t, Injector{ErrorRate: 0.3, Seed: 8}, ks, cfgs)
	diff := false
	for k, v := range a {
		if c[k] != v {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical fault patterns")
	}
}

func TestInjectorRateRoughlyHonoured(t *testing.T) {
	ks, cfgs := testCells(t)
	in := Injector{ErrorRate: 0.25, Seed: 3}
	pat := faultPattern(t, in, ks, cfgs)
	n, failed := 0, 0
	for _, v := range pat {
		n++
		if v {
			failed++
		}
	}
	frac := float64(failed) / float64(n)
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("fault fraction %.3f far from configured 0.25 (%d/%d)", frac, failed, n)
	}
}

func TestInjectorRetrySeesIndependentRoll(t *testing.T) {
	ks, cfgs := testCells(t)
	// With a 50% error rate, some cell must fail on attempt 0 and
	// succeed on attempt 1 within a handful of cells.
	eng := Injector{ErrorRate: 0.5, Seed: 1}.Wrap(gcn.Simulate)
	recovered := false
	for _, k := range ks {
		for _, cfg := range cfgs {
			_, err0 := eng(k, cfg)
			_, err1 := eng(k, cfg)
			if err0 != nil && err1 == nil {
				recovered = true
			}
		}
	}
	if !recovered {
		t.Fatal("no cell recovered on retry: attempt number not advancing the fault stream")
	}
}

func TestInjectorCorruptsResults(t *testing.T) {
	ks, cfgs := testCells(t)
	eng := Injector{CorruptRate: 1, Seed: 2}.Wrap(gcn.Simulate)
	sawNaN, sawNeg, sawInf := false, false, false
	for _, k := range ks {
		for _, cfg := range cfgs {
			r, err := eng(k, cfg)
			if err != nil {
				t.Fatalf("corruption must not error: %v", err)
			}
			switch {
			case math.IsNaN(r.Throughput):
				sawNaN = true
			case math.IsInf(r.Throughput, 1):
				sawInf = true
			case r.Throughput < 0:
				sawNeg = true
			default:
				t.Fatalf("CorruptRate 1 returned a clean throughput %g", r.Throughput)
			}
		}
	}
	if !sawNaN || !sawNeg || !sawInf {
		t.Fatalf("corruption modes not all exercised: nan=%v neg=%v inf=%v", sawNaN, sawNeg, sawInf)
	}
}

func TestInjectorStalls(t *testing.T) {
	ks, cfgs := testCells(t)
	eng := Injector{StallRate: 1, Stall: 20 * time.Millisecond, Seed: 4}.Wrap(gcn.Simulate)
	start := time.Now()
	if _, err := eng(ks[0], cfgs[0]); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("stalled call returned in %v, want >= 20ms", d)
	}
}

func TestInjectorLatencyIsDeterministicAndBounded(t *testing.T) {
	ks, cfgs := testCells(t)
	const max = 40 * time.Millisecond
	var decisions []Decision
	in := Injector{LatencyRate: 1, Latency: max, Seed: 5,
		OnDecision: func(d Decision) { decisions = append(decisions, d) }}
	eng := in.Wrap(gcn.Simulate)
	// Same cell, fresh wraps: attempt 0's delay must reproduce exactly,
	// and every call must be delayed but never past the configured max
	// (plus the simulation itself, which is microseconds here).
	var first [2]time.Duration
	for i := range first {
		eng2 := in.Wrap(gcn.Simulate)
		start := time.Now()
		if _, err := eng2(ks[0], cfgs[0]); err != nil {
			t.Fatal(err)
		}
		first[i] = time.Since(start)
	}
	if first[0] <= 0 || first[1] <= 0 {
		t.Fatalf("LatencyRate 1 added no delay: %v %v", first[0], first[1])
	}
	diff := first[0] - first[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > max/2 {
		t.Fatalf("same cell/attempt/seed delayed by %v then %v", first[0], first[1])
	}
	start := time.Now()
	if _, err := eng(ks[1], cfgs[1]); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > max+50*time.Millisecond {
		t.Fatalf("latency %v exceeded configured max %v", d, max)
	}
	for _, d := range decisions {
		if d.Kind != KindLatency {
			t.Fatalf("decision kind %v, want latency", d.Kind)
		}
	}
	if len(decisions) == 0 {
		t.Fatal("no latency decisions reported")
	}
	if KindLatency.String() != "latency" {
		t.Fatalf("kind name %q", KindLatency)
	}
	if !in.Active() {
		t.Fatal("latency-only injector reports inactive")
	}
	if err := (Injector{ErrorRate: 0.6, LatencyRate: 0.6}).Validate(); err == nil {
		t.Fatal("latency rate not counted against the engine budget")
	}
}

func TestInjectorZeroValueIsPassthrough(t *testing.T) {
	ks, cfgs := testCells(t)
	eng := Injector{}.Wrap(gcn.Simulate)
	for _, k := range ks {
		for _, cfg := range cfgs {
			got, err := eng(k, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := gcn.Simulate(k, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("zero injector altered a result: %+v vs %+v", got, want)
			}
		}
	}
}

func TestInjectorValidate(t *testing.T) {
	cases := []Injector{
		{ErrorRate: -0.1},
		{CorruptRate: 1.5},
		{StallRate: math.NaN()},
		{ErrorRate: 0.6, CorruptRate: 0.6},
		{PanicRate: 1.5},
		{TornWriteRate: -0.2},
		{ErrorRate: 0.5, PanicRate: 0.6},
	}
	for i, in := range cases {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: invalid injector %+v accepted", i, in)
		}
	}
	if err := (Injector{ErrorRate: 0.05, CorruptRate: 0.05, StallRate: 0.05, PanicRate: 0.05}).Validate(); err != nil {
		t.Errorf("valid injector rejected: %v", err)
	}
	// The torn-write stream is independent of the engine roll: a full
	// engine budget plus TornWriteRate 1 is still valid.
	if err := (Injector{ErrorRate: 1, TornWriteRate: 1}).Validate(); err != nil {
		t.Errorf("torn-write rate counted against the engine budget: %v", err)
	}
}

func TestInjectorPanics(t *testing.T) {
	ks, cfgs := testCells(t)
	var decisions []Kind
	in := Injector{PanicRate: 1, Seed: 6, OnDecision: func(d Decision) { decisions = append(decisions, d.Kind) }}
	eng := in.Wrap(gcn.Simulate)
	panicked := func() (p any) {
		defer func() { p = recover() }()
		eng(ks[0], cfgs[0])
		return nil
	}()
	if panicked == nil {
		t.Fatal("PanicRate 1 did not panic")
	}
	msg, ok := panicked.(string)
	if !ok || !strings.Contains(msg, "injected engine panic") {
		t.Fatalf("panic value %v does not identify the injector", panicked)
	}
	if len(decisions) != 1 || decisions[0] != KindPanic {
		t.Fatalf("decisions %v, want [panic]", decisions)
	}
	if KindPanic.String() != "panic" || KindTornWrite.String() != "torn-write" {
		t.Fatalf("kind names %q/%q", KindPanic, KindTornWrite)
	}
	if !in.Active() {
		t.Fatal("panic-only injector reports inactive")
	}
	if (Injector{TornWriteRate: 1}).Active() {
		t.Fatal("torn-write-only injector must not activate the engine path")
	}
}

// tornPattern drives n writes of b through a fresh wrapped writer and
// records, per write, how many bytes landed (-1 for an intact write).
func tornPattern(t *testing.T, in Injector, n int, b []byte) []int {
	t.Helper()
	var sink bytes.Buffer
	w := in.WrapWriter(&sink)
	out := make([]int, n)
	for i := range out {
		before := sink.Len()
		wn, err := w.Write(b)
		switch {
		case err == nil:
			if wn != len(b) {
				t.Fatalf("write %d: intact write landed %d of %d bytes", i, wn, len(b))
			}
			out[i] = -1
		case errors.Is(err, ErrTornWrite):
			if wn != sink.Len()-before || wn >= len(b) {
				t.Fatalf("write %d: torn write reported %d bytes, landed %d", i, wn, sink.Len()-before)
			}
			out[i] = wn
		default:
			t.Fatalf("write %d: unexpected error %v", i, err)
		}
	}
	return out
}

func TestWrapWriterTearsDeterministically(t *testing.T) {
	in := Injector{TornWriteRate: 0.5, Seed: 11}
	b := []byte("0123456789abcdef")
	a := tornPattern(t, in, 64, b)
	if reflect.DeepEqual(a, tornPattern(t, Injector{TornWriteRate: 0.5, Seed: 12}, 64, b)) {
		t.Fatal("different seeds tore identically")
	}
	if !reflect.DeepEqual(a, tornPattern(t, in, 64, b)) {
		t.Fatal("same seed tore differently across fresh writers")
	}
	torn := 0
	for _, v := range a {
		if v >= 0 {
			torn++
		}
	}
	if torn == 0 || torn == len(a) {
		t.Fatalf("rate 0.5 tore %d of %d writes", torn, len(a))
	}
}

func TestWrapWriterZeroRateIsIdentity(t *testing.T) {
	var sink bytes.Buffer
	if w := (Injector{}).WrapWriter(&sink); w != io.Writer(&sink) {
		t.Fatal("zero TornWriteRate wrapped the writer")
	}
}

// TestRowTamperDeterministicPerKey: the byzantine row-corruption
// decision is a pure function of (key, seq, seed) — a lying worker
// lies about the same rows on every replay — honours its rate, and
// reports itself through OnDecision as a corrupt-row kind.
func TestRowTamperDeterministicPerKey(t *testing.T) {
	if fire, _ := (Injector{}).RowTamper("j/k", 0); fire {
		t.Fatal("zero-value injector tampered a row")
	}
	var seen []Decision
	in := Injector{CorruptRowRate: 1, Seed: 11,
		OnDecision: func(d Decision) { seen = append(seen, d) }}
	fire1, sub1 := in.RowTamper("j/k", 0)
	if !fire1 {
		t.Fatal("rate 1 did not fire")
	}
	if len(seen) != 1 || seen[0].Kind != KindCorruptRow || seen[0].Kernel != "j/k" {
		t.Fatalf("decision not reported as corrupt-row for the key: %+v", seen)
	}
	// Same (key, seq, seed) in a fresh injector: identical decision,
	// identical corruption-shape sub-roll.
	fire2, sub2 := Injector{CorruptRowRate: 1, Seed: 11}.RowTamper("j/k", 0)
	if !fire2 || sub2 != sub1 {
		t.Fatalf("replay diverged: (%v,%d) vs (%v,%d)", fire1, sub1, fire2, sub2)
	}
	// Distinct keys draw from distinct streams.
	if _, other := in.RowTamper("j/other", 0); other == sub1 {
		if _, third := in.RowTamper("j/third", 0); third == sub1 {
			t.Fatal("sub-rolls identical across keys: streams not keyed")
		}
	}
	// A fractional rate is roughly honoured across many keys.
	frac := Injector{CorruptRowRate: 0.3, Seed: 11}
	fired := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if ok, _ := frac.RowTamper(fmt.Sprintf("j/k%d", i), 0); ok {
			fired++
		}
	}
	if rate := float64(fired) / n; rate < 0.25 || rate > 0.35 {
		t.Fatalf("corrupt-row rate %.3f far from requested 0.3", rate)
	}
}
