package fault

import (
	"gpuscale/internal/obs"
)

// MetricInjected is the counter family Observe registers: fired
// faults, labelled kind="error|corrupt|stall|panic|torn-write".
const MetricInjected = "fault_injected_total"

// Observe returns an OnDecision hook that turns injector decisions
// into telemetry: one MetricInjected counter increment per fired
// fault, and (when tw is non-nil) one instant "fault" span in the
// fault category carrying the cell, attempt and kind. Either sink may
// be nil. Counters are pre-registered so even a clean run exposes the
// series at zero — dashboards should not have to guess whether a
// missing counter means "no faults" or "no instrumentation".
func Observe(reg *obs.Registry, tw *obs.TraceWriter) func(Decision) {
	var counters [len(kindNames)]*obs.Counter
	if reg != nil {
		for k := range counters {
			counters[k] = reg.Counter(MetricInjected, "faults fired by the injector",
				obs.L("kind", Kind(k).String()))
		}
	}
	return func(d Decision) {
		if reg != nil && int(d.Kind) < len(counters) {
			counters[d.Kind].Inc()
		}
		if tw != nil {
			tw.Instant("fault", "fault", 0, map[string]any{
				"kind":     d.Kind.String(),
				"kernel":   d.Kernel,
				"cus":      d.Config.CUs,
				"core_mhz": d.Config.CoreClockMHz,
				"mem_mhz":  d.Config.MemClockMHz,
				"attempt":  d.Attempt,
			})
		}
	}
}
