package core

import "fmt"

// AxisPair names a pair of hardware knobs for interaction analysis.
type AxisPair int

// The three axis pairs.
const (
	PairCUCore AxisPair = iota
	PairCUMem
	PairCoreMem
)

var pairNames = [...]string{"cu x coreclk", "cu x memclk", "coreclk x memclk"}

// String returns the pair label.
func (p AxisPair) String() string {
	if p < 0 || int(p) >= len(pairNames) {
		return fmt.Sprintf("pair(%d)", int(p))
	}
	return pairNames[p]
}

// InteractionKind classifies how two knobs compose for a kernel.
type InteractionKind int

// Interaction classes, judged against multiplicative composition.
const (
	// Multiplicative: raising both knobs yields (close to) the product
	// of the individual speedups — the knobs address independent
	// bottlenecks or the same linear one.
	Multiplicative InteractionKind = iota
	// SubMultiplicative: the combined speedup falls short of the
	// product — the knobs compete for a shared bottleneck.
	SubMultiplicative
	// SuperMultiplicative: the combined speedup exceeds the product —
	// one knob unlocks the other (e.g. bandwidth only helps once
	// enough CUs generate requests).
	SuperMultiplicative
)

var interactionNames = [...]string{"multiplicative", "sub-multiplicative", "super-multiplicative"}

// String returns the class label.
func (k InteractionKind) String() string {
	if k < 0 || int(k) >= len(interactionNames) {
		return fmt.Sprintf("interaction(%d)", int(k))
	}
	return interactionNames[k]
}

// Interaction is the measured composition of one axis pair for one
// kernel.
type Interaction struct {
	// Pair identifies the knobs.
	Pair AxisPair
	// SpeedupA and SpeedupB are the single-knob speedups from the base
	// corner (the third knob held at its maximum).
	SpeedupA, SpeedupB float64
	// SpeedupBoth is the speedup with both knobs raised together.
	SpeedupBoth float64
	// Synergy is SpeedupBoth / (SpeedupA * SpeedupB); 1 means
	// perfectly multiplicative.
	Synergy float64
	// Kind is the classification under the tolerance used.
	Kind InteractionKind
}

// InteractionTolerance is the default band around synergy 1 treated as
// multiplicative.
const InteractionTolerance = 0.15

// Interactions measures all three axis-pair interactions of a surface.
// For each pair the remaining axis is held at its maximum and the pair
// spans from its minimum corner to its maximum corner.
func (s Surface) Interactions(tolerance float64) ([]Interaction, error) {
	if tolerance <= 0 || tolerance >= 1 {
		return nil, fmt.Errorf("core: interaction tolerance %g outside (0,1)", tolerance)
	}
	nCU := len(s.Space.CUCounts) - 1
	nF := len(s.Space.CoreClocksMHz) - 1
	nM := len(s.Space.MemClocksMHz) - 1
	type spec struct {
		pair                     AxisPair
		base, onlyA, onlyB, both [3]int // axis indices: cu, core, mem
	}
	specs := []spec{
		{PairCUCore, [3]int{0, 0, nM}, [3]int{nCU, 0, nM}, [3]int{0, nF, nM}, [3]int{nCU, nF, nM}},
		{PairCUMem, [3]int{0, nF, 0}, [3]int{nCU, nF, 0}, [3]int{0, nF, nM}, [3]int{nCU, nF, nM}},
		{PairCoreMem, [3]int{nCU, 0, 0}, [3]int{nCU, nF, 0}, [3]int{nCU, 0, nM}, [3]int{nCU, nF, nM}},
	}
	at := func(idx [3]int) float64 { return s.at(idx[0], idx[1], idx[2]) }
	out := make([]Interaction, 0, len(specs))
	for _, sp := range specs {
		base := at(sp.base)
		if base <= 0 {
			return nil, fmt.Errorf("core: %s: non-positive base throughput", s.Kernel)
		}
		it := Interaction{
			Pair:        sp.pair,
			SpeedupA:    at(sp.onlyA) / base,
			SpeedupB:    at(sp.onlyB) / base,
			SpeedupBoth: at(sp.both) / base,
		}
		if prod := it.SpeedupA * it.SpeedupB; prod > 0 {
			it.Synergy = it.SpeedupBoth / prod
		}
		switch {
		case it.Synergy < 1-tolerance:
			it.Kind = SubMultiplicative
		case it.Synergy > 1+tolerance:
			it.Kind = SuperMultiplicative
		default:
			it.Kind = Multiplicative
		}
		out = append(out, it)
	}
	return out, nil
}

// InteractionDistribution tallies interaction kinds per axis pair over
// a set of surfaces.
func InteractionDistribution(surfaces []Surface, tolerance float64) (map[AxisPair]map[InteractionKind]int, error) {
	out := map[AxisPair]map[InteractionKind]int{}
	for _, s := range surfaces {
		its, err := s.Interactions(tolerance)
		if err != nil {
			return nil, err
		}
		for _, it := range its {
			row, ok := out[it.Pair]
			if !ok {
				row = map[InteractionKind]int{}
				out[it.Pair] = row
			}
			row[it.Kind]++
		}
	}
	return out, nil
}
