package core

import (
	"fmt"
	"sort"

	"gpuscale/internal/sweep"
)

// KernelWeight describes one kernel's contribution to its program: the
// host launches it Iterations times per program run.
type KernelWeight struct {
	// Program is the owning program's name.
	Program string
	// Iterations is launches per program run (>= 1).
	Iterations int
}

// ProgramSurfaces aggregates per-kernel sweep times into per-program
// scaling surfaces: a program's duration on a configuration is the
// iteration-weighted sum of its kernels' durations there, and its
// "throughput" is the reciprocal (any monotone unit works — the
// taxonomy only consumes normalised curves). The result is sorted by
// program name.
//
// The paper's choice to study *kernels* rather than programs is
// motivated by exactly what this aggregation hides: kernels inside one
// program can scale in opposite ways. ProgramDisagreement quantifies
// that.
func ProgramSurfaces(m *sweep.Matrix, weightOf func(kernel string) (KernelWeight, bool)) ([]Surface, error) {
	nCfg := m.Space.Size()
	totals := map[string][]float64{}
	for r, name := range m.Kernels {
		w, ok := weightOf(name)
		if !ok {
			return nil, fmt.Errorf("core: kernel %q has no program weight", name)
		}
		if w.Iterations < 1 {
			return nil, fmt.Errorf("core: kernel %q has %d iterations", name, w.Iterations)
		}
		acc, ok := totals[w.Program]
		if !ok {
			acc = make([]float64, nCfg)
			totals[w.Program] = acc
		}
		for c := 0; c < nCfg; c++ {
			acc[c] += m.TimeNS[r][c] * float64(w.Iterations)
		}
	}
	if len(totals) == 0 {
		return nil, fmt.Errorf("core: no programs aggregated")
	}
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Surface, 0, len(names))
	for _, n := range names {
		times := totals[n]
		tput := make([]float64, nCfg)
		for c, t := range times {
			if t <= 0 {
				return nil, fmt.Errorf("core: program %q has non-positive time at config %d", n, c)
			}
			tput[c] = 1 / t
		}
		out = append(out, Surface{Kernel: n, Space: m.Space, Throughput: tput})
	}
	return out, nil
}

// Disagreement summarises how much a program's kernels disagree about
// scaling.
type Disagreement struct {
	// Program is the program's name.
	Program string
	// Kernels is its kernel count.
	Kernels int
	// Categories is the number of distinct kernel categories inside it.
	Categories int
	// ProgramCategory is the category of the aggregated surface.
	ProgramCategory Category
	// Hidden is true when at least one kernel's category differs from
	// the program-level category — behaviour a program-level study
	// would miss.
	Hidden bool
}

// ProgramDisagreement classifies programs and their kernels and
// reports the mismatch between the two views. kernelCS must be the
// per-kernel classifications of the same sweep used for programSurfs.
func ProgramDisagreement(cl *Classifier, programSurfs []Surface,
	kernelCS []Classification, programOf func(kernel string) string) ([]Disagreement, error) {
	byProgram := map[string][]Category{}
	for _, c := range kernelCS {
		p := programOf(c.Kernel)
		if p == "" {
			return nil, fmt.Errorf("core: kernel %q has no program", c.Kernel)
		}
		byProgram[p] = append(byProgram[p], c.Category)
	}
	var out []Disagreement
	for _, ps := range programSurfs {
		cats, ok := byProgram[ps.Kernel]
		if !ok {
			return nil, fmt.Errorf("core: program %q has no kernel classifications", ps.Kernel)
		}
		pc := cl.Classify(ps).Category
		distinct := map[Category]bool{}
		hidden := false
		for _, c := range cats {
			distinct[c] = true
			if c != pc {
				hidden = true
			}
		}
		out = append(out, Disagreement{
			Program:         ps.Kernel,
			Kernels:         len(cats),
			Categories:      len(distinct),
			ProgramCategory: pc,
			Hidden:          hidden,
		})
	}
	return out, nil
}
