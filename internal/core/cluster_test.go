package core

import (
	"strings"
	"testing"

	"gpuscale/internal/hw"
)

// modelSurfaces builds a small, labelled surface population with three
// clearly distinct behaviours.
func modelSurfaces() ([]Surface, []Category) {
	space := hw.StudySpace()
	var ss []Surface
	var want []Category
	for i := 0; i < 6; i++ {
		ss = append(ss, surfaceFromModel("comp", space, modelCompCoupled))
		want = append(want, CompCoupled)
		ss = append(ss, surfaceFromModel("bw", space, modelBWCoupled))
		want = append(want, BWCoupled)
		ss = append(ss, surfaceFromModel("flat", space, modelLaunchBound))
		want = append(want, LaunchBound)
	}
	return ss, want
}

func TestClusterSeparatesBehaviours(t *testing.T) {
	ss, want := modelSurfaces()
	ct, err := Cluster(ss, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	// All surfaces with the same intended category must share a
	// cluster, and different categories must not collide.
	byCat := map[Category]int{}
	for i, w := range want {
		cl := ct.Assignments[i]
		if prev, ok := byCat[w]; ok && prev != cl {
			t.Fatalf("category %v split across clusters %d and %d", w, prev, cl)
		}
		byCat[w] = cl
	}
	seen := map[int]bool{}
	for _, cl := range byCat {
		if seen[cl] {
			t.Fatal("two categories merged into one cluster")
		}
		seen[cl] = true
	}
	if ct.Silhouette < 0.5 {
		t.Errorf("silhouette = %g, want > 0.5 for synthetic separation", ct.Silhouette)
	}
}

func TestClusterCentroidNames(t *testing.T) {
	ss, _ := modelSurfaces()
	ct, err := Cluster(ss, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(ct.Names, " ")
	// The compute cluster must read as CU+clock coupled without
	// bandwidth; the flat cluster as coupled to nothing.
	if !strings.Contains(joined, "cu:strong/clk:strong/bw:none") {
		t.Errorf("centroid names %v missing compute-coupled label", ct.Names)
	}
	if !strings.Contains(joined, "cu:none/clk:none/bw:none") {
		t.Errorf("centroid names %v missing flat label", ct.Names)
	}
}

func TestClusterAgreementPerfectOnSynthetic(t *testing.T) {
	ss, _ := modelSurfaces()
	cs := DefaultClassifier().ClassifyAll(ss)
	ct, err := Cluster(ss, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	table, purity, err := Agreement(cs, ct)
	if err != nil {
		t.Fatal(err)
	}
	if purity != 1 {
		t.Fatalf("purity = %g, want 1 on noiseless synthetic data (table %v)", purity, table)
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster(nil, 2, 1); err == nil {
		t.Error("empty surfaces accepted")
	}
	ss, _ := modelSurfaces()
	if _, err := Cluster(ss, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestAgreementLengthMismatch(t *testing.T) {
	ss, _ := modelSurfaces()
	cs := DefaultClassifier().ClassifyAll(ss)
	ct, err := Cluster(ss, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Agreement(cs[:2], ct); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSelectK(t *testing.T) {
	ss, _ := modelSurfaces()
	inertia, sil, bestK, err := SelectK(ss, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(inertia) != 4 || len(sil) != 4 {
		t.Fatalf("curve lengths %d/%d, want 4", len(inertia), len(sil))
	}
	if bestK != 3 {
		t.Errorf("bestK = %d, want 3 for three synthetic behaviours", bestK)
	}
	if _, _, _, err := SelectK(ss, 1, 11); err == nil {
		t.Error("maxK=1 accepted")
	}
}
