package core

import (
	"fmt"
	"sort"

	"gpuscale/internal/stats"
)

// SuiteScaling summarises how well one suite's kernels use a modern
// GPU — the quantitative form of the paper's conclusion that several
// benchmark suites no longer scale to modern GPU sizes.
type SuiteScaling struct {
	// Suite is the suite name.
	Suite string
	// Kernels is the suite's kernel count.
	Kernels int
	// MedianCUEfficiency is the median of per-kernel CU-axis
	// efficiency (gain over the 11x CU range divided by 11).
	MedianCUEfficiency float64
	// SaturatedEarlyFraction is the fraction of kernels whose CU curve
	// reaches 95% of its final value at or below half the maximum CU
	// count — kernels for which the top half of the GPU is wasted.
	SaturatedEarlyFraction float64
	// MedianTotalSpeedup is the median max-over-min-config speedup.
	MedianTotalSpeedup float64
	// Scales reports the suite verdict: true when fewer than half its
	// kernels saturate early.
	Scales bool
}

// SaturationPoint returns the smallest axis setting at which the curve
// reaches the given fraction of its final value. For curves that only
// decline it returns the first setting.
func SaturationPoint(r AxisResponse, fraction float64) float64 {
	if len(r.Curve) == 0 {
		return 0
	}
	target := r.Gain * fraction
	for i, v := range r.Curve {
		if v >= target {
			return r.Settings[i]
		}
	}
	return r.Settings[len(r.Settings)-1]
}

// AnalyzeSuite computes scaling statistics for one suite's surfaces.
func AnalyzeSuite(name string, surfaces []Surface) (SuiteScaling, error) {
	if len(surfaces) == 0 {
		return SuiteScaling{}, fmt.Errorf("core: suite %q has no surfaces", name)
	}
	var effs, speedups []float64
	early := 0
	for _, s := range surfaces {
		cu := s.Marginal(AxisCU)
		effs = append(effs, cu.Efficiency)
		speedups = append(speedups, s.TotalSpeedup())
		half := cu.Settings[len(cu.Settings)-1] / 2
		if SaturationPoint(cu, 0.95) <= half {
			early++
		}
	}
	frac := float64(early) / float64(len(surfaces))
	return SuiteScaling{
		Suite:                  name,
		Kernels:                len(surfaces),
		MedianCUEfficiency:     stats.Median(effs),
		SaturatedEarlyFraction: frac,
		MedianTotalSpeedup:     stats.Median(speedups),
		Scales:                 frac < 0.5,
	}, nil
}

// AnalyzeSuites groups surfaces by the supplied suite-of-kernel lookup
// and analyses each group, returning results sorted by suite name.
func AnalyzeSuites(surfaces []Surface, suiteOf func(kernel string) string) ([]SuiteScaling, error) {
	groups := map[string][]Surface{}
	for _, s := range surfaces {
		suite := suiteOf(s.Kernel)
		if suite == "" {
			return nil, fmt.Errorf("core: kernel %q has no suite", s.Kernel)
		}
		groups[suite] = append(groups[suite], s)
	}
	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]SuiteScaling, 0, len(names))
	for _, n := range names {
		r, err := AnalyzeSuite(n, groups[n])
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// CUEfficiencyQuartiles returns the 25/50/75% quantiles of CU-axis
// efficiency for a set of surfaces — the Fig R-8 box data.
func CUEfficiencyQuartiles(surfaces []Surface) (q25, q50, q75 float64) {
	var effs []float64
	for _, s := range surfaces {
		effs = append(effs, s.Marginal(AxisCU).Efficiency)
	}
	return stats.Quantile(effs, 0.25), stats.Quantile(effs, 0.5), stats.Quantile(effs, 0.75)
}
