// Package core implements the paper's contribution: the taxonomy of
// GPGPU performance scaling. It turns a kernel's measured performance
// over the (compute units, core clock, memory clock) grid into
//
//   - marginal scaling curves per hardware axis,
//   - per-axis shape labels (linear, sublinear, saturating, flat,
//     peak-and-decline),
//   - a combined scaling category (compute-coupled, bandwidth-coupled,
//     balanced, parallelism-limited, latency-bound, CU-intolerant,
//     launch-bound, irregular),
//   - a data-driven alternative taxonomy from k-means clustering of
//     normalised response vectors, and
//   - suite-level scalability statistics (the paper's "benchmarks do
//     not scale to modern GPU sizes" analysis).
package core

import (
	"fmt"

	"gpuscale/internal/hw"
	"gpuscale/internal/stats"
	"gpuscale/internal/sweep"
)

// Axis names one of the three hardware knobs.
type Axis int

// The three sweep axes.
const (
	// AxisCU is the compute-unit count.
	AxisCU Axis = iota
	// AxisCoreClock is the shader-engine clock.
	AxisCoreClock
	// AxisMemClock is the memory clock (bandwidth).
	AxisMemClock
)

var axisNames = [...]string{"cu", "coreclk", "memclk"}

// String returns the axis short name.
func (a Axis) String() string {
	if a < 0 || int(a) >= len(axisNames) {
		return fmt.Sprintf("axis(%d)", int(a))
	}
	return axisNames[a]
}

// Surface is one kernel's performance over a configuration grid.
type Surface struct {
	// Kernel is the kernel's name.
	Kernel string
	// Space is the grid the throughput vector indexes into (via
	// Space.Configs order).
	Space hw.Space
	// Throughput holds work-items/ns per configuration.
	Throughput []float64
	// Valid, when non-nil, marks which Throughput entries are trusted
	// measurements. Partial sweeps (failed or canceled cells) produce
	// masked surfaces; a nil Valid means every cell is good, and the
	// analysis paths below are then byte-identical to the pre-masking
	// implementation.
	Valid []bool
}

// Coverage returns the fraction of trusted cells (1 when unmasked).
func (s Surface) Coverage() float64 {
	if s.Valid == nil {
		return 1
	}
	if len(s.Valid) == 0 {
		return 0
	}
	n := 0
	for _, v := range s.Valid {
		if v {
			n++
		}
	}
	return float64(n) / float64(len(s.Valid))
}

// FromMatrix extracts the surface of one matrix row.
func FromMatrix(m *sweep.Matrix, row int) (Surface, error) {
	if row < 0 || row >= len(m.Kernels) {
		return Surface{}, fmt.Errorf("core: row %d out of range [0,%d)", row, len(m.Kernels))
	}
	return Surface{
		Kernel:     m.Kernels[row],
		Space:      m.Space,
		Throughput: m.Throughput[row],
		Valid:      validMask(m, row),
	}, nil
}

// Surfaces extracts every row of a matrix, masking failed cells.
func Surfaces(m *sweep.Matrix) []Surface {
	out := make([]Surface, len(m.Kernels))
	for i := range m.Kernels {
		out[i] = Surface{
			Kernel:     m.Kernels[i],
			Space:      m.Space,
			Throughput: m.Throughput[i],
			Valid:      validMask(m, i),
		}
	}
	return out
}

// validMask derives a surface mask from a matrix row's status plane;
// fully measured rows get a nil mask so the fast unmasked paths run.
func validMask(m *sweep.Matrix, row int) []bool {
	if m.RowComplete(row) {
		return nil
	}
	mask := make([]bool, len(m.Throughput[row]))
	for c := range mask {
		mask[c] = m.CellOK(row, c)
	}
	return mask
}

// at returns the throughput at the given axis indices.
func (s Surface) at(cu, fc, fm int) float64 {
	nF, nM := len(s.Space.CoreClocksMHz), len(s.Space.MemClocksMHz)
	return s.Throughput[(cu*nF+fc)*nM+fm]
}

// ok reports whether the cell at the given axis indices is trusted.
func (s Surface) ok(cu, fc, fm int) bool {
	if s.Valid == nil {
		return true
	}
	nF, nM := len(s.Space.CoreClocksMHz), len(s.Space.MemClocksMHz)
	return s.Valid[(cu*nF+fc)*nM+fm]
}

// AxisResponse is one marginal scaling curve: performance along one
// axis with the other two held at their maxima, normalised to the
// curve's first point.
type AxisResponse struct {
	// Axis identifies the swept knob.
	Axis Axis
	// Settings are the axis values (CU counts or MHz).
	Settings []float64
	// Curve is throughput normalised to Curve[0] == 1.
	Curve []float64
	// Gain is Curve[len-1]: the speedup across the whole axis range.
	Gain float64
	// IdealGain is Settings[last]/Settings[0]: perfect linear scaling.
	IdealGain float64
	// Efficiency is Gain/IdealGain.
	Efficiency float64
	// PeakIndex is the index of the curve maximum.
	PeakIndex int
	// PeakGain is the curve maximum.
	PeakGain float64
	// LinearR2 is the goodness of a least-squares line through the
	// curve (1 = perfectly straight response, of any slope). It is
	// classification metadata: straight sublinear curves and curving
	// saturating ones can share a Gain but not an R2.
	LinearR2 float64
}

// Marginal extracts the marginal response along one axis, holding the
// other two axes at their maximum settings (the paper's convention:
// scaling is judged against the flagship configuration).
func (s Surface) Marginal(axis Axis) AxisResponse {
	nCU := len(s.Space.CUCounts)
	nF := len(s.Space.CoreClocksMHz)
	nM := len(s.Space.MemClocksMHz)

	// Masked cells are dropped from the curve: the remaining points
	// still line up with their settings, so shapes stay meaningful as
	// long as enough of the axis survives (the classifier's
	// low-coverage check guards the rest).
	var settings []float64
	var raw []float64
	switch axis {
	case AxisCU:
		for i, cu := range s.Space.CUCounts {
			if s.ok(i, nF-1, nM-1) {
				settings = append(settings, float64(cu))
				raw = append(raw, s.at(i, nF-1, nM-1))
			}
		}
	case AxisCoreClock:
		for i, f := range s.Space.CoreClocksMHz {
			if s.ok(nCU-1, i, nM-1) {
				settings = append(settings, f)
				raw = append(raw, s.at(nCU-1, i, nM-1))
			}
		}
	case AxisMemClock:
		for i, f := range s.Space.MemClocksMHz {
			if s.ok(nCU-1, nF-1, i) {
				settings = append(settings, f)
				raw = append(raw, s.at(nCU-1, nF-1, i))
			}
		}
	}
	return newResponse(axis, settings, raw)
}

// NewAxisResponse normalises a raw throughput curve over axis settings
// into an AxisResponse — the entry point for callers who measured a
// curve outside a full Surface (what-if sweeps, custom probes).
func NewAxisResponse(axis Axis, settings, raw []float64) AxisResponse {
	return newResponse(axis, settings, raw)
}

// newResponse normalises a raw curve into an AxisResponse.
func newResponse(axis Axis, settings, raw []float64) AxisResponse {
	r := AxisResponse{Axis: axis, Settings: settings}
	if len(raw) == 0 || raw[0] <= 0 {
		return r
	}
	r.Curve = make([]float64, len(raw))
	for i, v := range raw {
		r.Curve[i] = v / raw[0]
		if r.Curve[i] > r.PeakGain {
			r.PeakGain = r.Curve[i]
			r.PeakIndex = i
		}
	}
	r.Gain = r.Curve[len(r.Curve)-1]
	r.IdealGain = settings[len(settings)-1] / settings[0]
	if r.IdealGain > 0 {
		r.Efficiency = r.Gain / r.IdealGain
	}
	if fit, err := stats.Linear(settings, r.Curve); err == nil {
		r.LinearR2 = fit.R2
	}
	return r
}

// SpeedupGrid returns the CU x core-clock speedup surface at the top
// memory clock, normalised to the weakest corner — the heatmap data of
// Fig R-6.
func (s Surface) SpeedupGrid() [][]float64 {
	nF := len(s.Space.CoreClocksMHz)
	nM := len(s.Space.MemClocksMHz)
	base := s.at(0, 0, nM-1)
	out := make([][]float64, len(s.Space.CUCounts))
	for cu := range out {
		row := make([]float64, nF)
		for f := 0; f < nF; f++ {
			if base > 0 {
				row[f] = s.at(cu, f, nM-1) / base
			}
		}
		out[cu] = row
	}
	return out
}

// TotalSpeedup returns max-configuration throughput over
// min-configuration throughput — the per-kernel datum of Fig R-7.
// It is 0 when either corner cell is masked.
func (s Surface) TotalSpeedup() float64 {
	if s.Valid != nil && (!s.Valid[0] || !s.Valid[len(s.Valid)-1]) {
		return 0
	}
	lo := s.Throughput[0]
	hi := s.Throughput[len(s.Throughput)-1]
	if lo <= 0 {
		return 0
	}
	return hi / lo
}

// ResponseVector concatenates the per-point efficiency of all three
// marginal curves into one feature vector for clustering: entry j of
// each curve is Curve[j]/(Settings[j]/Settings[0]), i.e. 1 for perfect
// linear scaling and Settings[0]/Settings[j] for a totally flat curve.
func (s Surface) ResponseVector() []float64 {
	var out []float64
	for _, axis := range []Axis{AxisCU, AxisCoreClock, AxisMemClock} {
		r := s.Marginal(axis)
		for j := range r.Curve {
			ideal := r.Settings[j] / r.Settings[0]
			out = append(out, r.Curve[j]/ideal)
		}
	}
	return out
}
