package core

import (
	"sync"
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/suites"
	"gpuscale/internal/sweep"
)

// fullSweep runs the complete corpus over the full study space once
// per test binary; the round engine finishes it in well under a second.
var fullSweep = sync.OnceValues(func() (*sweep.Matrix, error) {
	return sweep.Run(suites.AllKernels(suites.Corpus()), hw.StudySpace(), sweep.Options{})
})

func corpusClassifications(t *testing.T) ([]Surface, []Classification) {
	t.Helper()
	m, err := fullSweep()
	if err != nil {
		t.Fatal(err)
	}
	ss := Surfaces(m)
	return ss, DefaultClassifier().ClassifyAll(ss)
}

func TestCorpusTaxonomyMatchesPaperNarrative(t *testing.T) {
	_, cs := corpusClassifications(t)
	d := Distribution(cs)
	total := len(cs)
	if total != 267 {
		t.Fatalf("classified %d kernels, want 267", total)
	}
	intuitive := d[CompCoupled] + d[BWCoupled]
	nonObvious := d[CUIntolerant] + d[LatencyBound] + d[ParallelismLimited] + d[LaunchBound]
	// Abstract: "many kernels scale in intuitive ways" — a majority.
	if intuitive*2 < total {
		t.Errorf("intuitive classes = %d/%d, want a majority", intuitive, total)
	}
	// Abstract: "a number of kernels ... scale in non-obvious ways" —
	// a material minority.
	if nonObvious < 20 {
		t.Errorf("non-obvious classes = %d, want a material population", nonObvious)
	}
	// Specifically, the abstract calls out both kernels that lose
	// performance with more CUs and kernels that plateau with
	// frequency and bandwidth.
	if d[CUIntolerant] == 0 {
		t.Error("no CU-intolerant kernels found")
	}
	if d[LatencyBound] == 0 {
		t.Error("no latency-bound kernels found")
	}
	if d[ParallelismLimited] == 0 {
		t.Error("no parallelism-limited kernels found")
	}
}

func TestCorpusTaxonomyRecoversArchetypes(t *testing.T) {
	// The taxonomy works from timings alone; check it rediscovers the
	// generator's intent for the archetypes with a crisp expected
	// class. (Stencil/balanced/divergent legitimately straddle
	// classes, so they are not pinned here.)
	_, cs := corpusClassifications(t)
	entries := suites.AllEntries(suites.Corpus())
	if len(entries) != len(cs) {
		t.Fatalf("entries %d vs classifications %d", len(entries), len(cs))
	}
	expect := map[suites.Archetype]Category{
		suites.StreamBW:     BWCoupled,
		suites.TinyLaunch:   LaunchBound,
		suites.PointerChase: LatencyBound,
	}
	miss := map[suites.Archetype]int{}
	count := map[suites.Archetype]int{}
	for i, e := range entries {
		want, ok := expect[e.Archetype]
		if !ok {
			continue
		}
		count[e.Archetype]++
		if cs[i].Category != want {
			miss[e.Archetype]++
		}
	}
	for a, want := range expect {
		if count[a] == 0 {
			t.Errorf("no %v kernels in corpus", a)
			continue
		}
		if frac := float64(miss[a]) / float64(count[a]); frac > 0.2 {
			t.Errorf("archetype %v: %d/%d misclassified (want >= 80%% as %v)",
				a, miss[a], count[a], want)
		}
	}
	// CU-intolerance must be discovered for most cache-sensitive
	// kernels.
	ci, tot := 0, 0
	for i, e := range entries {
		if e.Archetype == suites.CacheSensitive {
			tot++
			if cs[i].Category == CUIntolerant {
				ci++
			}
		}
	}
	if tot == 0 || ci*2 < tot {
		t.Errorf("cache-sensitive kernels discovered as CU-intolerant: %d/%d", ci, tot)
	}
}

func TestCorpusSuiteScalingFinding(t *testing.T) {
	ss, _ := corpusClassifications(t)
	suiteOf := map[string]string{}
	for _, s := range suites.Corpus() {
		for _, p := range s.Programs {
			for _, e := range p.Kernels {
				suiteOf[e.Kernel.Name] = s.Name
			}
		}
	}
	rs, err := AnalyzeSuites(ss, func(k string) string { return suiteOf[k] })
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Fatalf("suites analysed = %d, want 8", len(rs))
	}
	verdicts := map[string]bool{}
	for _, r := range rs {
		verdicts[r.Suite] = r.Scales
	}
	// The paper's conclusion: several current suites do not scale to
	// modern GPU sizes. The legacy-style analogues must fail and the
	// modern-input analogues must pass.
	if verdicts["sdk-samples"] {
		t.Error("sdk-samples (tiny legacy grids) marked as scaling")
	}
	if verdicts["microbench"] {
		t.Error("microbench marked as scaling")
	}
	if !verdicts["proxyapps"] {
		t.Error("proxyapps (modern inputs) marked as not scaling")
	}
	if !verdicts["throughput"] {
		t.Error("throughput suite marked as not scaling")
	}
	failing := 0
	for _, scales := range verdicts {
		if !scales {
			failing++
		}
	}
	if failing < 3 {
		t.Errorf("only %d suites fail to scale; the paper reports a number of them", failing)
	}
}

func TestCorpusClusteringAgreesWithRules(t *testing.T) {
	ss, cs := corpusClassifications(t)
	ct, err := Cluster(ss, 8, 17)
	if err != nil {
		t.Fatal(err)
	}
	_, purity, err := Agreement(cs, ct)
	if err != nil {
		t.Fatal(err)
	}
	if purity < 0.6 {
		t.Errorf("cluster/rule purity = %.3f, want >= 0.6", purity)
	}
	if ct.Silhouette < 0.3 {
		t.Errorf("corpus silhouette = %.3f, want >= 0.3", ct.Silhouette)
	}
}

func TestCorpusSpeedupRange(t *testing.T) {
	ss, _ := corpusClassifications(t)
	// Total speedups must span a wide range: launch-bound kernels near
	// 1x, compute-coupled kernels far beyond the single-axis maxima.
	lo, hi := 1e18, 0.0
	for _, s := range ss {
		v := s.TotalSpeedup()
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > 2 {
		t.Errorf("min total speedup = %.2f, want ~1 for launch-bound kernels", lo)
	}
	if hi < 20 {
		t.Errorf("max total speedup = %.2f, want > 20 for compute-coupled kernels", hi)
	}
}
