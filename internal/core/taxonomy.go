package core

import "fmt"

// Category is a combined scaling class: the taxonomy's unit of report.
type Category int

// The eight taxonomy categories. The first three are the paper's
// "intuitive" classes; ParallelismLimited, LatencyBound and
// CUIntolerant are the non-obvious ones its abstract highlights.
const (
	// CompCoupled kernels scale with CU count and core clock and are
	// insensitive to memory bandwidth.
	CompCoupled Category = iota
	// BWCoupled kernels scale with memory bandwidth and saturate the
	// other two knobs.
	BWCoupled
	// Balanced kernels respond to several knobs with diminishing
	// returns (roofline crossover inside the sweep range).
	Balanced
	// ParallelismLimited kernels stop scaling with CUs because the
	// launch cannot fill them.
	ParallelismLimited
	// LatencyBound kernels plateau in both frequency and bandwidth:
	// serialised memory latency dominates.
	LatencyBound
	// CUIntolerant kernels lose performance when CUs are added
	// (shared-cache thrashing).
	CUIntolerant
	// LaunchBound kernels are dominated by fixed launch overhead and
	// are flat on every axis.
	LaunchBound
	// Irregular kernels match none of the above rules.
	Irregular
	// LowCoverage is the verdict for kernels whose sweep lost too many
	// cells (failed or canceled runs) for the shape rules to be
	// trustworthy. It is deliberately distinct from Irregular: "we
	// cannot tell" is a measurement outcome, not a scaling class.
	LowCoverage
)

var categoryNames = [...]string{
	"comp-coupled", "bw-coupled", "balanced", "parallelism-limited",
	"latency-bound", "cu-intolerant", "launch-bound", "irregular",
	"low-coverage",
}

// NumCategories is the count of defined categories.
const NumCategories = int(LowCoverage) + 1

// String returns the category's kebab-case name.
func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("category(%d)", int(c))
	}
	return categoryNames[c]
}

// Classification is the full taxonomy verdict for one kernel.
type Classification struct {
	// Kernel is the kernel's name.
	Kernel string
	// CU, Core, Mem are the three marginal responses.
	CU, Core, Mem AxisResponse
	// CUShape, CoreShape, MemShape are their labels.
	CUShape, CoreShape, MemShape Shape
	// Category is the combined class.
	Category Category
	// TotalSpeedup is max-config over min-config throughput.
	TotalSpeedup float64
	// Coverage is the fraction of the kernel's sweep cells that held
	// validated measurements (1 for a fault-free sweep).
	Coverage float64
}

// Classifier maps surfaces to classifications under a threshold set.
type Classifier struct {
	thresholds Thresholds
}

// NewClassifier builds a classifier, validating the thresholds.
func NewClassifier(t Thresholds) (*Classifier, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &Classifier{thresholds: t}, nil
}

// DefaultClassifier returns a classifier with DefaultThresholds.
func DefaultClassifier() *Classifier {
	c, err := NewClassifier(DefaultThresholds())
	if err != nil {
		panic(err) // defaults are statically valid
	}
	return c
}

// Classify labels one kernel surface. Surfaces with masked cells
// (partial sweeps) classify from the surviving points when coverage
// allows; below the MinCoverage threshold — or when a marginal curve
// loses so many points that no shape can be judged — the verdict is
// LowCoverage rather than a guess.
func (cl *Classifier) Classify(s Surface) Classification {
	cu := s.Marginal(AxisCU)
	fc := s.Marginal(AxisCoreClock)
	fm := s.Marginal(AxisMemClock)
	c := Classification{
		Kernel:       s.Kernel,
		CU:           cu,
		Core:         fc,
		Mem:          fm,
		CUShape:      cl.thresholds.ClassifyShape(cu),
		CoreShape:    cl.thresholds.ClassifyShape(fc),
		MemShape:     cl.thresholds.ClassifyShape(fm),
		TotalSpeedup: s.TotalSpeedup(),
		Coverage:     s.Coverage(),
	}
	c.Category = combine(c)
	if s.Valid != nil && (c.Coverage < cl.thresholds.MinCoverage ||
		len(cu.Curve) < 2 || len(fc.Curve) < 2 || len(fm.Curve) < 2) {
		c.Category = LowCoverage
	}
	return c
}

// ClassifyAll labels every surface.
func (cl *Classifier) ClassifyAll(surfaces []Surface) []Classification {
	out := make([]Classification, len(surfaces))
	for i, s := range surfaces {
		out[i] = cl.Classify(s)
	}
	return out
}

// combine derives the combined category from the three shapes — the
// taxonomy's decision tree. Rules are ordered from most to least
// specific.
func combine(c Classification) Category {
	cu, fc, fm := c.CUShape, c.CoreShape, c.MemShape
	switch {
	case cu == PeakDecline:
		return CUIntolerant
	case cu == Flat && fc == Flat && fm == Flat:
		return LaunchBound
	case fm == Linear,
		fm == Sublinear && c.Mem.Efficiency > c.CU.Efficiency && c.Mem.Efficiency > c.Core.Efficiency:
		return BWCoupled
	case cu == Flat || cu == Saturating:
		return ParallelismLimited
	case (cu == Linear || cu == Sublinear) && fc == Linear && fm == Flat:
		return CompCoupled
	case (cu == Linear || cu == Sublinear) &&
		(fc == Sublinear || fc == Saturating || fc == Flat) &&
		(fm == Flat || fm == Saturating):
		return LatencyBound
	case countScaling(cu, fc, fm) >= 2:
		return Balanced
	default:
		return Irregular
	}
}

// countScaling counts axes with material response.
func countScaling(shapes ...Shape) int {
	n := 0
	for _, s := range shapes {
		if s == Linear || s == Sublinear || s == Saturating {
			n++
		}
	}
	return n
}

// Distribution counts classifications per category.
func Distribution(cs []Classification) map[Category]int {
	out := map[Category]int{}
	for _, c := range cs {
		out[c.Category]++
	}
	return out
}
