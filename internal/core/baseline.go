package core

import (
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// BaselineClass is the verdict of the static roofline baseline.
type BaselineClass int

// The baseline only knows two classes — that poverty is the point: it
// cannot express plateaus, CU-intolerance, or launch domination, which
// is what the taxonomy adds.
const (
	// BaselineCompute: arithmetic intensity above machine balance.
	BaselineCompute BaselineClass = iota
	// BaselineMemory: arithmetic intensity below machine balance.
	BaselineMemory
)

// String returns "compute" or "memory".
func (b BaselineClass) String() string {
	if b == BaselineCompute {
		return "compute"
	}
	return "memory"
}

// RooflineBaseline classifies a kernel statically from arithmetic
// intensity against the reference configuration's machine balance —
// the conventional pre-taxonomy approach the paper's richer classes
// improve upon.
func RooflineBaseline(k *kernel.Kernel) BaselineClass {
	if k.ArithmeticIntensity() >= hw.Reference().MachineBalance() {
		return BaselineCompute
	}
	return BaselineMemory
}

// BaselineConfusion counts, for each taxonomy category, how the
// roofline baseline labelled its kernels. Categories whose kernels
// split across (or concentrate in the wrong) baseline class
// demonstrate behaviours the static view cannot see.
func BaselineConfusion(cs []Classification, kernels map[string]*kernel.Kernel) map[Category]map[BaselineClass]int {
	out := map[Category]map[BaselineClass]int{}
	for _, c := range cs {
		k, ok := kernels[c.Kernel]
		if !ok {
			continue
		}
		row, ok := out[c.Category]
		if !ok {
			row = map[BaselineClass]int{}
			out[c.Category] = row
		}
		row[RooflineBaseline(k)]++
	}
	return out
}
