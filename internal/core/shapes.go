package core

import "fmt"

// Shape labels the qualitative form of one marginal scaling curve.
type Shape int

// The five per-axis shapes the taxonomy distinguishes.
const (
	// Flat: the knob barely matters.
	Flat Shape = iota
	// Linear: speedup tracks the knob nearly 1:1.
	Linear
	// Sublinear: real but diminishing returns across the whole range.
	Sublinear
	// Saturating: early gains that stop well before the top setting.
	Saturating
	// PeakDecline: performance peaks at an interior setting and then
	// falls — the paper's non-obvious "more CUs hurt" behaviour.
	PeakDecline
)

var shapeNames = [...]string{"flat", "linear", "sublinear", "saturating", "peak-decline"}

// String returns the shape's kebab-case name.
func (s Shape) String() string {
	if s < 0 || int(s) >= len(shapeNames) {
		return fmt.Sprintf("shape(%d)", int(s))
	}
	return shapeNames[s]
}

// Thresholds parameterise the shape classifier. The zero value is not
// useful; start from DefaultThresholds. The sensitivity ablation
// (bench/experiments) perturbs these to measure category stability.
type Thresholds struct {
	// FlatGain: curves whose total gain stays below this are Flat.
	FlatGain float64
	// LinearEfficiency: curves at or above this gain/ideal ratio are
	// Linear.
	LinearEfficiency float64
	// SaturationTailGain: if the second half of the curve gains less
	// than this factor, the curve saturated.
	SaturationTailGain float64
	// DeclineFraction: if the final point falls below this fraction of
	// the peak (and the peak is interior), the curve is PeakDecline.
	DeclineFraction float64
	// MinCoverage: masked surfaces (partial sweeps) whose trusted-cell
	// fraction falls below this are classified LowCoverage instead of
	// risking a wrong shape verdict. 0 disables the check (the shape
	// rules then run on whatever points survive); it never affects
	// unmasked surfaces.
	MinCoverage float64
}

// DefaultThresholds returns the classifier defaults used throughout
// the experiments.
func DefaultThresholds() Thresholds {
	return Thresholds{
		FlatGain:           1.15,
		LinearEfficiency:   0.80,
		SaturationTailGain: 1.08,
		DeclineFraction:    0.97,
		MinCoverage:        0.90,
	}
}

// Validate checks the thresholds are internally consistent.
func (t Thresholds) Validate() error {
	if t.FlatGain < 1 {
		return fmt.Errorf("core: FlatGain %g < 1", t.FlatGain)
	}
	if t.LinearEfficiency <= 0 || t.LinearEfficiency > 1 {
		return fmt.Errorf("core: LinearEfficiency %g outside (0,1]", t.LinearEfficiency)
	}
	if t.SaturationTailGain < 1 {
		return fmt.Errorf("core: SaturationTailGain %g < 1", t.SaturationTailGain)
	}
	if t.DeclineFraction <= 0 || t.DeclineFraction > 1 {
		return fmt.Errorf("core: DeclineFraction %g outside (0,1]", t.DeclineFraction)
	}
	if t.MinCoverage < 0 || t.MinCoverage > 1 {
		return fmt.Errorf("core: MinCoverage %g outside [0,1]", t.MinCoverage)
	}
	return nil
}

// ClassifyShape labels one marginal response. Order matters: decline
// is checked first (it can coexist with large early gains), then
// flatness, then the linear/saturating/sublinear split.
func (t Thresholds) ClassifyShape(r AxisResponse) Shape {
	n := len(r.Curve)
	if n < 2 {
		return Flat
	}
	// Interior peak with a material fall afterwards.
	if r.PeakIndex < n-1 && r.Gain < r.PeakGain*t.DeclineFraction && r.PeakGain >= t.FlatGain {
		return PeakDecline
	}
	if r.PeakGain < t.FlatGain {
		return Flat
	}
	if r.Efficiency >= t.LinearEfficiency {
		return Linear
	}
	// Saturating: the second half of the curve contributes almost
	// nothing even though the first half grew.
	mid := r.Curve[n/2]
	if mid > 0 && r.Gain/mid < t.SaturationTailGain {
		return Saturating
	}
	return Sublinear
}
