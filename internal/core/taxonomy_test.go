package core

import (
	"math"
	"strings"
	"testing"

	"gpuscale/internal/hw"
)

// Analytic throughput models for each taxonomy category, used to test
// the combined decision tree independently of the simulator.

func modelCompCoupled(c hw.Config) float64 {
	return float64(c.CUs) * c.CoreClockMHz
}

func modelBWCoupled(c hw.Config) float64 {
	return c.MemClockMHz * (1 - math.Exp(-float64(c.CUs)*c.CoreClockMHz/2000))
}

func modelParallelismLimited(c hw.Config) float64 {
	eff := math.Min(float64(c.CUs), 12)
	return eff * c.CoreClockMHz
}

func modelLatencyBound(c hw.Config) float64 {
	// Fixed 300 ns device latency plus a core-domain portion.
	lat := 300 + 120*1000/c.CoreClockMHz
	return float64(c.CUs) / lat * 1e3
}

func modelCUIntolerant(c hw.Config) float64 {
	x := float64(c.CUs)
	return x * math.Exp(-x/18) * c.CoreClockMHz
}

func modelLaunchBound(hw.Config) float64 { return 42 }

func modelBalanced(c hw.Config) float64 {
	// Harmonic blend of compute and bandwidth ceilings.
	comp := float64(c.CUs) * c.CoreClockMHz
	bw := 40 * c.MemClockMHz
	return 1 / (1/comp + 1/bw)
}

func TestCombinedCategories(t *testing.T) {
	space := hw.StudySpace()
	cl := DefaultClassifier()
	tests := []struct {
		name  string
		model func(hw.Config) float64
		want  Category
	}{
		{"comp", modelCompCoupled, CompCoupled},
		{"bw", modelBWCoupled, BWCoupled},
		{"smallgrid", modelParallelismLimited, ParallelismLimited},
		{"latency", modelLatencyBound, LatencyBound},
		{"thrash", modelCUIntolerant, CUIntolerant},
		{"tiny", modelLaunchBound, LaunchBound},
		{"balanced", modelBalanced, Balanced},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := surfaceFromModel(tt.name, space, tt.model)
			got := cl.Classify(s)
			if got.Category != tt.want {
				t.Fatalf("Classify(%s) = %v (cu=%v clk=%v mem=%v), want %v",
					tt.name, got.Category, got.CUShape, got.CoreShape, got.MemShape, tt.want)
			}
		})
	}
}

func TestClassificationFields(t *testing.T) {
	space := hw.StudySpace()
	c := DefaultClassifier().Classify(surfaceFromModel("m", space, modelCompCoupled))
	if c.Kernel != "m" {
		t.Errorf("Kernel = %q", c.Kernel)
	}
	if math.Abs(c.CU.IdealGain-11) > 1e-9 {
		t.Errorf("CU ideal gain = %g, want 11", c.CU.IdealGain)
	}
	if math.Abs(c.Core.IdealGain-5) > 1e-9 {
		t.Errorf("core ideal gain = %g, want 5", c.Core.IdealGain)
	}
	if math.Abs(c.Mem.IdealGain-8.3333) > 1e-3 {
		t.Errorf("mem ideal gain = %g, want ~8.33", c.Mem.IdealGain)
	}
	// Perfect compute coupling: total speedup = 11 x 5 = 55.
	if math.Abs(c.TotalSpeedup-55) > 1e-6 {
		t.Errorf("TotalSpeedup = %g, want 55", c.TotalSpeedup)
	}
}

func TestDistribution(t *testing.T) {
	space := hw.StudySpace()
	cl := DefaultClassifier()
	cs := cl.ClassifyAll([]Surface{
		surfaceFromModel("a", space, modelCompCoupled),
		surfaceFromModel("b", space, modelCompCoupled),
		surfaceFromModel("c", space, modelBWCoupled),
	})
	d := Distribution(cs)
	if d[CompCoupled] != 2 || d[BWCoupled] != 1 {
		t.Fatalf("Distribution = %v", d)
	}
}

func TestResponseVectorProperties(t *testing.T) {
	space := hw.StudySpace()
	s := surfaceFromModel("m", space, modelCompCoupled)
	v := s.ResponseVector()
	wantLen := len(space.CUCounts) + len(space.CoreClocksMHz) + len(space.MemClocksMHz)
	if len(v) != wantLen {
		t.Fatalf("vector length = %d, want %d", len(v), wantLen)
	}
	// Perfect compute coupling: CU and clock efficiencies are exactly
	// 1 at every point; memory entries decay as 1/ideal.
	for i := 0; i < len(space.CUCounts)+len(space.CoreClocksMHz); i++ {
		if math.Abs(v[i]-1) > 1e-9 {
			t.Fatalf("entry %d = %g, want 1", i, v[i])
		}
	}
	last := v[len(v)-1]
	if math.Abs(last-150.0/1250) > 1e-9 {
		t.Fatalf("final mem efficiency = %g, want %g", last, 150.0/1250)
	}
}

func TestSpeedupGridAndTotalSpeedup(t *testing.T) {
	space := hw.StudySpace()
	s := surfaceFromModel("m", space, modelCompCoupled)
	g := s.SpeedupGrid()
	if len(g) != 11 || len(g[0]) != 9 {
		t.Fatalf("grid shape %dx%d, want 11x9", len(g), len(g[0]))
	}
	if math.Abs(g[0][0]-1) > 1e-9 {
		t.Errorf("origin = %g, want 1", g[0][0])
	}
	if math.Abs(g[10][8]-55) > 1e-6 {
		t.Errorf("far corner = %g, want 55", g[10][8])
	}
	if got := s.TotalSpeedup(); math.Abs(got-55) > 1e-6 {
		t.Errorf("TotalSpeedup = %g, want 55", got)
	}
}

func TestSurfacesAndFromMatrixErrors(t *testing.T) {
	space := hw.StudySpace()
	s := surfaceFromModel("m", space, modelCompCoupled)
	if got := s.Marginal(AxisCU); len(got.Curve) != 11 {
		t.Fatalf("CU marginal length = %d", len(got.Curve))
	}
	zero := Surface{Kernel: "z", Space: space, Throughput: make([]float64, space.Size())}
	if r := zero.Marginal(AxisCU); r.Curve != nil {
		t.Fatal("zero surface produced a curve")
	}
	if got := zero.TotalSpeedup(); got != 0 {
		t.Fatalf("zero surface TotalSpeedup = %g", got)
	}
}

func TestExplain(t *testing.T) {
	space := hw.StudySpace()
	cl := DefaultClassifier()
	for _, tt := range []struct {
		model func(hw.Config) float64
		want  string
	}{
		{modelCompCoupled, "memory bandwidth is slack"},
		{modelCUIntolerant, "peaks at"},
		{modelLaunchBound, "launch overhead dominates"},
		{modelBWCoupled, "binding resource"},
		{modelParallelismLimited, "cannot fill"},
		{modelLatencyBound, "Serialised"},
		{modelBalanced, "diminishing returns"},
	} {
		c := cl.Classify(surfaceFromModel("m", space, tt.model))
		out := c.Explain()
		if !strings.Contains(strings.ToLower(out), strings.ToLower(tt.want)) {
			t.Errorf("Explain() for %v missing %q:\n%s", c.Category, tt.want, out)
		}
		if !strings.Contains(out, "CUs") || !strings.Contains(out, "memclk") {
			t.Errorf("Explain() missing axis lines:\n%s", out)
		}
	}
}
