package core

import (
	"fmt"

	"gpuscale/internal/stats"
)

// ClusterTaxonomy is the data-driven alternative to the rule-based
// classifier: k-means over per-point-efficiency response vectors.
type ClusterTaxonomy struct {
	// K is the cluster count.
	K int
	// Assignments maps surface index to cluster id.
	Assignments []int
	// Centroids are the cluster centres in response-vector space.
	Centroids [][]float64
	// Names are shape-derived labels for each centroid.
	Names []string
	// Inertia is the k-means objective value.
	Inertia float64
	// Silhouette is the clustering's mean silhouette score.
	Silhouette float64
}

// Cluster builds the data-driven taxonomy with the given cluster
// count. Deterministic for a fixed seed.
func Cluster(surfaces []Surface, k int, seed int64) (*ClusterTaxonomy, error) {
	if len(surfaces) == 0 {
		return nil, fmt.Errorf("core: no surfaces to cluster")
	}
	vecs := make([][]float64, len(surfaces))
	for i, s := range surfaces {
		vecs[i] = s.ResponseVector()
		if len(vecs[i]) != len(vecs[0]) {
			return nil, fmt.Errorf("core: surface %d response dim %d != %d (mixed spaces?)",
				i, len(vecs[i]), len(vecs[0]))
		}
	}
	c, err := stats.KMeans(vecs, k, seed, 8)
	if err != nil {
		return nil, fmt.Errorf("core: clustering: %w", err)
	}
	ct := &ClusterTaxonomy{
		K:           k,
		Assignments: c.Assignments,
		Centroids:   c.Centroids,
		Inertia:     c.Inertia,
		Silhouette:  stats.Silhouette(vecs, c.Assignments, k),
	}
	space := surfaces[0].Space
	nCU := len(space.CUCounts)
	nF := len(space.CoreClocksMHz)
	for _, centroid := range ct.Centroids {
		ct.Names = append(ct.Names, nameCentroid(centroid, nCU, nF))
	}
	return ct, nil
}

// nameCentroid derives a human-readable label from a centroid's mean
// per-axis efficiency: which axes the cluster's kernels couple to.
func nameCentroid(v []float64, nCU, nF int) string {
	mean := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	// Skip each curve's first point (always exactly 1).
	cu := mean(v[1:nCU])
	fc := mean(v[nCU+1 : nCU+nF])
	fm := mean(v[nCU+nF+1:])
	label := func(e float64) string {
		switch {
		case e >= 0.75:
			return "strong"
		case e >= 0.4:
			return "partial"
		default:
			return "none"
		}
	}
	return fmt.Sprintf("cu:%s/clk:%s/bw:%s", label(cu), label(fc), label(fm))
}

// SelectK runs the elbow and silhouette analysis over k in [2, maxK]
// and returns the inertia curve, silhouette curve, and the k with the
// best silhouette — the Fig R-5 data.
func SelectK(surfaces []Surface, maxK int, seed int64) (inertia, silhouette []float64, bestK int, err error) {
	if maxK < 2 {
		return nil, nil, 0, fmt.Errorf("core: maxK %d < 2", maxK)
	}
	vecs := make([][]float64, len(surfaces))
	for i, s := range surfaces {
		vecs[i] = s.ResponseVector()
	}
	best := -2.0
	for k := 2; k <= maxK && k <= len(vecs); k++ {
		c, kerr := stats.KMeans(vecs, k, seed, 8)
		if kerr != nil {
			return nil, nil, 0, kerr
		}
		s := stats.Silhouette(vecs, c.Assignments, k)
		inertia = append(inertia, c.Inertia)
		silhouette = append(silhouette, s)
		if s > best {
			best, bestK = s, k
		}
	}
	return inertia, silhouette, bestK, nil
}

// Agreement cross-tabulates rule-based categories against cluster ids
// and returns the contingency table plus the purity score: the
// fraction of kernels whose cluster's majority category matches their
// own (1 = the clustering rediscovers the rules exactly).
func Agreement(cs []Classification, ct *ClusterTaxonomy) (table map[Category][]int, purity float64, err error) {
	if len(cs) != len(ct.Assignments) {
		return nil, 0, fmt.Errorf("core: %d classifications vs %d assignments",
			len(cs), len(ct.Assignments))
	}
	table = map[Category][]int{}
	for i, c := range cs {
		row, ok := table[c.Category]
		if !ok {
			row = make([]int, ct.K)
		}
		row[ct.Assignments[i]]++
		table[c.Category] = row
	}
	// Majority category per cluster.
	majority := make([]Category, ct.K)
	for cl := 0; cl < ct.K; cl++ {
		best := -1
		for cat, row := range table {
			if row[cl] > best {
				best = row[cl]
				majority[cl] = cat
			}
		}
	}
	match := 0
	for i, c := range cs {
		if majority[ct.Assignments[i]] == c.Category {
			match++
		}
	}
	if len(cs) > 0 {
		purity = float64(match) / float64(len(cs))
	}
	return table, purity, nil
}
