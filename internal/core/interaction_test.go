package core

import (
	"math"
	"testing"

	"gpuscale/internal/hw"
)

func TestInteractionsMultiplicative(t *testing.T) {
	// Perfect compute coupling: CU and core clock compose exactly
	// multiplicatively.
	s := surfaceFromModel("m", hw.StudySpace(), modelCompCoupled)
	its, err := s.Interactions(InteractionTolerance)
	if err != nil {
		t.Fatal(err)
	}
	if len(its) != 3 {
		t.Fatalf("interactions = %d, want 3", len(its))
	}
	cuCore := its[0]
	if cuCore.Pair != PairCUCore {
		t.Fatalf("first pair = %v", cuCore.Pair)
	}
	if math.Abs(cuCore.Synergy-1) > 1e-9 {
		t.Errorf("comp-coupled cu x core synergy = %g, want 1", cuCore.Synergy)
	}
	if cuCore.Kind != Multiplicative {
		t.Errorf("comp-coupled cu x core kind = %v", cuCore.Kind)
	}
	if math.Abs(cuCore.SpeedupBoth-55) > 1e-6 {
		t.Errorf("combined speedup = %g, want 55", cuCore.SpeedupBoth)
	}
}

func TestInteractionsSubMultiplicative(t *testing.T) {
	// Bandwidth-coupled kernels: CU and core clock both saturate on the
	// same memory bottleneck, so together they deliver far less than
	// the product of their (already small) individual gains... but the
	// clearest shared-bottleneck case is the roofline-balanced model,
	// where cu x coreclk stops paying once the bandwidth ceiling hits.
	s := surfaceFromModel("m", hw.StudySpace(), modelBalanced)
	its, err := s.Interactions(InteractionTolerance)
	if err != nil {
		t.Fatal(err)
	}
	if its[0].Kind != SubMultiplicative {
		t.Errorf("balanced cu x core kind = %v (synergy %.2f), want sub-multiplicative",
			its[0].Kind, its[0].Synergy)
	}
}

func TestInteractionsSuperMultiplicative(t *testing.T) {
	// Bandwidth only helps once enough compute exists to request it:
	// starting from the (minCU, minClock) corner, raising memory clock
	// alone does little, raising CUs alone saturates, together they
	// compound.
	s := surfaceFromModel("m", hw.StudySpace(), modelBWCoupled)
	its, err := s.Interactions(InteractionTolerance)
	if err != nil {
		t.Fatal(err)
	}
	cuMem := its[1]
	if cuMem.Pair != PairCUMem {
		t.Fatalf("second pair = %v", cuMem.Pair)
	}
	if cuMem.Synergy <= 1 {
		t.Errorf("bw-coupled cu x mem synergy = %g, want > 1 (unlock)", cuMem.Synergy)
	}
}

func TestInteractionsTolerance(t *testing.T) {
	s := surfaceFromModel("m", hw.StudySpace(), modelCompCoupled)
	if _, err := s.Interactions(0); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := s.Interactions(1); err == nil {
		t.Error("unit tolerance accepted")
	}
}

func TestInteractionsZeroBase(t *testing.T) {
	space := hw.StudySpace()
	s := Surface{Kernel: "z", Space: space, Throughput: make([]float64, space.Size())}
	if _, err := s.Interactions(InteractionTolerance); err == nil {
		t.Error("zero surface accepted")
	}
}

func TestInteractionDistribution(t *testing.T) {
	space := hw.StudySpace()
	ss := []Surface{
		surfaceFromModel("a", space, modelCompCoupled),
		surfaceFromModel("b", space, modelBalanced),
	}
	dist, err := InteractionDistribution(ss, InteractionTolerance)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, row := range dist {
		for _, n := range row {
			total += n
		}
	}
	if total != 6 {
		t.Fatalf("tallied %d interactions, want 6 (2 kernels x 3 pairs)", total)
	}
}

func TestPairAndKindStrings(t *testing.T) {
	for p := PairCUCore; p <= PairCoreMem; p++ {
		if p.String() == "" {
			t.Errorf("pair %d unnamed", int(p))
		}
	}
	if AxisPair(9).String() != "pair(9)" {
		t.Errorf("invalid pair = %q", AxisPair(9).String())
	}
	for k := Multiplicative; k <= SuperMultiplicative; k++ {
		if k.String() == "" {
			t.Errorf("kind %d unnamed", int(k))
		}
	}
	if InteractionKind(9).String() != "interaction(9)" {
		t.Errorf("invalid kind = %q", InteractionKind(9).String())
	}
}
