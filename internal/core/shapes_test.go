package core

import (
	"math"
	"testing"

	"gpuscale/internal/hw"
)

// synthResponse builds an AxisResponse from raw values over settings.
func synthResponse(settings, raw []float64) AxisResponse {
	return newResponse(AxisCU, settings, raw)
}

func cuSettings() []float64 {
	s := make([]float64, 0, 11)
	for cu := 4; cu <= 44; cu += 4 {
		s = append(s, float64(cu))
	}
	return s
}

// curveFrom generates raw values by applying f to each setting.
func curveFrom(settings []float64, f func(x float64) float64) []float64 {
	out := make([]float64, len(settings))
	for i, x := range settings {
		out[i] = f(x)
	}
	return out
}

func TestClassifyShapeLinear(t *testing.T) {
	s := cuSettings()
	r := synthResponse(s, curveFrom(s, func(x float64) float64 { return 3 * x }))
	if got := DefaultThresholds().ClassifyShape(r); got != Linear {
		t.Fatalf("perfect linear classified as %v", got)
	}
	if math.Abs(r.Efficiency-1) > 1e-9 {
		t.Fatalf("efficiency = %g, want 1", r.Efficiency)
	}
}

func TestClassifyShapeFlat(t *testing.T) {
	s := cuSettings()
	r := synthResponse(s, curveFrom(s, func(x float64) float64 { return 7 + 0.01*x }))
	if got := DefaultThresholds().ClassifyShape(r); got != Flat {
		t.Fatalf("near-constant curve classified as %v", got)
	}
}

func TestClassifyShapeSaturating(t *testing.T) {
	s := cuSettings()
	// Grows to 3x by the midpoint, then stops.
	r := synthResponse(s, curveFrom(s, func(x float64) float64 {
		return math.Min(x, 20)
	}))
	if got := DefaultThresholds().ClassifyShape(r); got != Saturating {
		t.Fatalf("early-saturating curve classified as %v", got)
	}
}

func TestClassifyShapeSublinear(t *testing.T) {
	s := cuSettings()
	r := synthResponse(s, curveFrom(s, math.Sqrt))
	// sqrt(11x range) gives gain sqrt(11) ~ 3.3, efficiency 0.30,
	// still growing at the end.
	if got := DefaultThresholds().ClassifyShape(r); got != Sublinear {
		t.Fatalf("sqrt curve classified as %v", got)
	}
}

func TestClassifyShapePeakDecline(t *testing.T) {
	s := cuSettings()
	r := synthResponse(s, curveFrom(s, func(x float64) float64 {
		return x * math.Exp(-x/20) // peaks near x=20, falls after
	}))
	if got := DefaultThresholds().ClassifyShape(r); got != PeakDecline {
		t.Fatalf("peaked curve classified as %v", got)
	}
}

func TestClassifyShapeTinyPeakIsNotDecline(t *testing.T) {
	s := cuSettings()
	// A 1% dip at the end must not count as decline.
	raw := curveFrom(s, func(x float64) float64 { return x })
	raw[len(raw)-1] = raw[len(raw)-2] * 1.001
	r := synthResponse(s, raw)
	if got := DefaultThresholds().ClassifyShape(r); got == PeakDecline {
		t.Fatal("1%% end dip classified as peak-decline")
	}
}

func TestClassifyShapeShortCurve(t *testing.T) {
	r := synthResponse([]float64{4}, []float64{1})
	if got := DefaultThresholds().ClassifyShape(r); got != Flat {
		t.Fatalf("single-point curve classified as %v", got)
	}
}

func TestThresholdValidation(t *testing.T) {
	if err := DefaultThresholds().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []Thresholds{
		{FlatGain: 0.5, LinearEfficiency: 0.8, SaturationTailGain: 1.1, DeclineFraction: 0.97},
		{FlatGain: 1.2, LinearEfficiency: 0, SaturationTailGain: 1.1, DeclineFraction: 0.97},
		{FlatGain: 1.2, LinearEfficiency: 0.8, SaturationTailGain: 0.9, DeclineFraction: 0.97},
		{FlatGain: 1.2, LinearEfficiency: 0.8, SaturationTailGain: 1.1, DeclineFraction: 0},
	}
	for i, th := range bad {
		if err := th.Validate(); err == nil {
			t.Errorf("bad thresholds %d accepted", i)
		}
		if _, err := NewClassifier(th); err == nil {
			t.Errorf("NewClassifier accepted bad thresholds %d", i)
		}
	}
}

func TestShapeAndAxisStrings(t *testing.T) {
	for s := Flat; s <= PeakDecline; s++ {
		if s.String() == "" {
			t.Errorf("shape %d has empty name", int(s))
		}
	}
	if Shape(42).String() != "shape(42)" {
		t.Errorf("invalid shape name = %q", Shape(42).String())
	}
	for a := AxisCU; a <= AxisMemClock; a++ {
		if a.String() == "" {
			t.Errorf("axis %d has empty name", int(a))
		}
	}
	if Axis(9).String() != "axis(9)" {
		t.Errorf("invalid axis name = %q", Axis(9).String())
	}
	for c := CompCoupled; c <= Irregular; c++ {
		if c.String() == "" {
			t.Errorf("category %d has empty name", int(c))
		}
	}
	if Category(55).String() != "category(55)" {
		t.Errorf("invalid category name = %q", Category(55).String())
	}
}

// surfaceFromModel builds a Surface over a space from an analytic
// throughput model, for classifier tests that need full surfaces.
func surfaceFromModel(name string, space hw.Space, model func(hw.Config) float64) Surface {
	cfgs := space.Configs()
	tput := make([]float64, len(cfgs))
	for i, c := range cfgs {
		tput[i] = model(c)
	}
	return Surface{Kernel: name, Space: space, Throughput: tput}
}

func TestLinearR2Metadata(t *testing.T) {
	s := cuSettings()
	straight := synthResponse(s, curveFrom(s, func(x float64) float64 { return 3 * x }))
	if straight.LinearR2 < 0.999 {
		t.Errorf("straight curve R2 = %g, want ~1", straight.LinearR2)
	}
	bent := synthResponse(s, curveFrom(s, func(x float64) float64 {
		return math.Min(x, 12)
	}))
	if bent.LinearR2 > 0.95 {
		t.Errorf("saturating curve R2 = %g, want < 0.95", bent.LinearR2)
	}
}
