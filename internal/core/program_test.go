package core

import (
	"strings"
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/sweep"
)

func programMatrix(t *testing.T) *sweep.Matrix {
	t.Helper()
	ks := []*kernel.Kernel{
		// prog-a: one compute-coupled and one bandwidth-coupled kernel.
		kernel.New("s", "prog-a", "dense").Geometry(2048, 256).
			Compute(25000, 500).Access(kernel.Streaming, 8, 2, 4).MustBuild(),
		kernel.New("s", "prog-a", "stream").Geometry(2048, 256).
			Compute(300, 50).Access(kernel.Streaming, 256, 64, 4).
			Locality(256*1024, 0, 0).MustBuild(),
		// prog-b: two compute-coupled kernels (agreeing).
		kernel.New("s", "prog-b", "k1").Geometry(2048, 256).
			Compute(25000, 500).Access(kernel.Streaming, 8, 2, 4).MustBuild(),
		kernel.New("s", "prog-b", "k2").Geometry(2048, 256).
			Compute(30000, 500).Access(kernel.Streaming, 8, 2, 4).MustBuild(),
	}
	m, err := sweep.Run(ks, hw.StudySpace(), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func programOf(k string) string {
	return strings.SplitN(k, ".", 2)[0]
}

func weightOf(k string) (KernelWeight, bool) {
	return KernelWeight{Program: programOf(k), Iterations: 1}, true
}

func TestProgramSurfaces(t *testing.T) {
	m := programMatrix(t)
	ps, err := ProgramSurfaces(m, weightOf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("programs = %d, want 2", len(ps))
	}
	if ps[0].Kernel != "prog-a" || ps[1].Kernel != "prog-b" {
		t.Fatalf("program order: %s, %s", ps[0].Kernel, ps[1].Kernel)
	}
	for _, p := range ps {
		if len(p.Throughput) != m.Space.Size() {
			t.Fatalf("%s surface has %d cells", p.Kernel, len(p.Throughput))
		}
		for _, v := range p.Throughput {
			if v <= 0 {
				t.Fatalf("%s has non-positive throughput", p.Kernel)
			}
		}
	}
}

func TestProgramSurfacesWeighting(t *testing.T) {
	m := programMatrix(t)
	// Weight the stream kernel so heavily that prog-a becomes
	// bandwidth-coupled at the program level.
	heavyStream := func(k string) (KernelWeight, bool) {
		w := KernelWeight{Program: programOf(k), Iterations: 1}
		if strings.HasSuffix(k, "stream") {
			w.Iterations = 200
		}
		return w, true
	}
	ps, err := ProgramSurfaces(m, heavyStream)
	if err != nil {
		t.Fatal(err)
	}
	cl := DefaultClassifier()
	if got := cl.Classify(ps[0]).Category; got != BWCoupled {
		t.Errorf("stream-dominated prog-a = %v, want bw-coupled", got)
	}
}

func TestProgramSurfacesErrors(t *testing.T) {
	m := programMatrix(t)
	if _, err := ProgramSurfaces(m, func(string) (KernelWeight, bool) {
		return KernelWeight{}, false
	}); err == nil {
		t.Error("missing weight accepted")
	}
	if _, err := ProgramSurfaces(m, func(k string) (KernelWeight, bool) {
		return KernelWeight{Program: "p", Iterations: 0}, true
	}); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestProgramDisagreement(t *testing.T) {
	m := programMatrix(t)
	ps, err := ProgramSurfaces(m, weightOf)
	if err != nil {
		t.Fatal(err)
	}
	cl := DefaultClassifier()
	kernelCS := cl.ClassifyAll(Surfaces(m))
	ds, err := ProgramDisagreement(cl, ps, kernelCS, programOf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("disagreements = %d, want 2", len(ds))
	}
	byName := map[string]Disagreement{}
	for _, d := range ds {
		byName[d.Program] = d
	}
	// prog-a mixes compute- and bandwidth-coupled kernels: the program
	// view must hide at least one of them.
	if a := byName["prog-a"]; a.Categories < 2 || !a.Hidden {
		t.Errorf("prog-a disagreement = %+v, want >= 2 categories and hidden", a)
	}
	// prog-b's kernels agree.
	if b := byName["prog-b"]; b.Categories != 1 {
		t.Errorf("prog-b categories = %d, want 1", b.Categories)
	}
}

func TestProgramDisagreementErrors(t *testing.T) {
	m := programMatrix(t)
	ps, err := ProgramSurfaces(m, weightOf)
	if err != nil {
		t.Fatal(err)
	}
	cl := DefaultClassifier()
	kernelCS := cl.ClassifyAll(Surfaces(m))
	if _, err := ProgramDisagreement(cl, ps, kernelCS, func(string) string { return "" }); err == nil {
		t.Error("missing program mapping accepted")
	}
	if _, err := ProgramDisagreement(cl, ps, nil, programOf); err == nil {
		t.Error("missing kernel classifications accepted")
	}
}
