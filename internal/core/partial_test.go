package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"gpuscale/internal/fault"
	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/sweep"
)

func partialSpace(t *testing.T) hw.Space {
	t.Helper()
	s, err := hw.NewSpace([]int{4, 24, 44}, []float64{200, 600, 1000}, []float64{150, 700, 1250})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func partialKernels() []*kernel.Kernel {
	return []*kernel.Kernel{
		kernel.New("s", "p", "a").Geometry(512, 256).MustBuild(),
		kernel.New("s", "p", "b").Geometry(512, 256).Compute(30000, 100).MustBuild(),
		kernel.New("s", "p", "c").Geometry(64, 256).MustBuild(),
		kernel.New("s", "p", "d").Geometry(2048, 256).Access(kernel.Streaming, 64, 8, 4).MustBuild(),
	}
}

func TestSurfacesMaskFailedCells(t *testing.T) {
	space := partialSpace(t)
	in := fault.Injector{ErrorRate: 0.3, Seed: 21}
	m, rep, err := sweep.RunContext(context.Background(), partialKernels(), space,
		sweep.Options{Sim: in.Wrap(gcn.Simulate)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 {
		t.Fatal("fault storm failed nothing; test needs holes")
	}
	for i, s := range Surfaces(m) {
		if m.RowComplete(i) {
			if s.Valid != nil {
				t.Fatalf("complete row %d got a mask", i)
			}
			if s.Coverage() != 1 {
				t.Fatalf("complete row %d coverage %g", i, s.Coverage())
			}
			continue
		}
		if s.Valid == nil {
			t.Fatalf("incomplete row %d has no mask", i)
		}
		if c := s.Coverage(); c >= 1 || c <= 0 {
			t.Fatalf("incomplete row %d coverage %g outside (0,1)", i, c)
		}
		for c, ok := range s.Valid {
			if ok != m.CellOK(i, c) {
				t.Fatalf("mask disagrees with status at (%d,%d)", i, c)
			}
		}
	}
}

// TestSurfacesMaskQuarantinedCells: cells the circuit breaker
// quarantined are untrusted exactly like failed ones, and a mostly
// quarantined row classifies LowCoverage instead of guessing.
func TestSurfacesMaskQuarantinedCells(t *testing.T) {
	space := partialSpace(t)
	ks := partialKernels()
	bad := ks[1].Name
	opts := sweep.Options{
		Breaker: 3,
		Sim: func(k *kernel.Kernel, cfg hw.Config) (gcn.Result, error) {
			if k.Name == bad {
				return gcn.Result{}, errors.New("device lost")
			}
			return gcn.Simulate(k, cfg)
		},
	}
	m, rep, err := sweep.RunContext(context.Background(), ks, space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined == 0 || rep.BreakerTrips != 1 {
		t.Fatalf("breaker drill produced no quarantine: %s", rep.Summary())
	}
	row := m.Row(bad)
	s := Surfaces(m)[row]
	if s.Valid == nil {
		t.Fatal("quarantined row has no mask")
	}
	masked := 0
	for c, ok := range s.Valid {
		if m.Status[row][c] == sweep.StatusQuarantined && ok {
			t.Fatalf("quarantined cell %d trusted by the surface mask", c)
		}
		if !ok {
			masked++
		}
	}
	if masked != space.Size() {
		t.Fatalf("masked %d cells, want the whole broken row (%d)", masked, space.Size())
	}
	got := DefaultClassifier().Classify(s)
	if got.Category != LowCoverage {
		t.Fatalf("quarantined row classified %s, want low-coverage", got.Category)
	}
}

func TestMarginalMasksInvalidPoints(t *testing.T) {
	space := partialSpace(t)
	m, err := sweep.Run(partialKernels()[:1], space, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromMatrix(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := s.Marginal(AxisCU)
	if len(full.Curve) != 3 {
		t.Fatalf("unmasked CU curve has %d points, want 3", len(full.Curve))
	}
	// Mask the middle CU point on the marginal path (top clocks).
	nF, nM := len(space.CoreClocksMHz), len(space.MemClocksMHz)
	masked := s
	masked.Valid = make([]bool, len(s.Throughput))
	for i := range masked.Valid {
		masked.Valid[i] = true
	}
	masked.Valid[(1*nF+(nF-1))*nM+(nM-1)] = false
	got := masked.Marginal(AxisCU)
	if len(got.Curve) != 2 {
		t.Fatalf("masked CU curve has %d points, want 2", len(got.Curve))
	}
	if got.Settings[0] != 4 || got.Settings[1] != 44 {
		t.Fatalf("masked settings %v, want [4 44]", got.Settings)
	}
	// The other two axes are untouched by that mask.
	if !reflect.DeepEqual(masked.Marginal(AxisCoreClock), s.Marginal(AxisCoreClock)) {
		t.Fatal("core-clock marginal changed by an off-path mask")
	}
}

func TestClassifyLowCoverage(t *testing.T) {
	space := partialSpace(t)
	m, err := sweep.Run(partialKernels()[:1], space, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := FromMatrix(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl := DefaultClassifier()
	clean := cl.Classify(s)
	if clean.Category == LowCoverage {
		t.Fatal("fault-free surface classified LowCoverage")
	}
	if clean.Coverage != 1 {
		t.Fatalf("fault-free coverage %g", clean.Coverage)
	}

	// Drop 20% of cells: below the default 0.9 MinCoverage.
	sparse := s
	sparse.Valid = make([]bool, len(s.Throughput))
	for i := range sparse.Valid {
		sparse.Valid[i] = i%5 != 0
	}
	got := cl.Classify(sparse)
	if got.Category != LowCoverage {
		t.Fatalf("80%% coverage classified %v, want low-coverage", got.Category)
	}
	if got.Coverage >= 0.9 {
		t.Fatalf("coverage %g not below threshold", got.Coverage)
	}

	// A marginal curve reduced below two points is unclassifiable even
	// if overall coverage is high.
	nF, nM := len(space.CoreClocksMHz), len(space.MemClocksMHz)
	thin := s
	thin.Valid = make([]bool, len(s.Throughput))
	for i := range thin.Valid {
		thin.Valid[i] = true
	}
	for i := 0; i < len(space.CUCounts)-1; i++ {
		thin.Valid[(i*nF+(nF-1))*nM+(nM-1)] = false
	}
	loose, err := NewClassifier(Thresholds{
		FlatGain: 1.15, LinearEfficiency: 0.80, SaturationTailGain: 1.08,
		DeclineFraction: 0.97, MinCoverage: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := loose.Classify(thin); got.Category != LowCoverage {
		t.Fatalf("single-point CU curve classified %v, want low-coverage", got.Category)
	}

	// With MinCoverage 0 and all marginals intact, sparse off-path
	// holes still classify to a real category.
	offpath := s
	offpath.Valid = make([]bool, len(s.Throughput))
	for i := range offpath.Valid {
		offpath.Valid[i] = true
	}
	// Mask one interior cell not on any marginal path and not a corner.
	offpath.Valid[(1*nF+0)*nM+1] = false
	if got := loose.Classify(offpath); got.Category != clean.Category {
		t.Fatalf("off-path hole flipped category %v -> %v", clean.Category, got.Category)
	}
}

func TestLowCoverageCategoryString(t *testing.T) {
	if LowCoverage.String() != "low-coverage" {
		t.Fatalf("LowCoverage.String() = %q", LowCoverage.String())
	}
	if NumCategories != int(LowCoverage)+1 {
		t.Fatal("NumCategories out of sync")
	}
}

func TestThresholdsMinCoverageValidated(t *testing.T) {
	bad := DefaultThresholds()
	bad.MinCoverage = 1.2
	if err := bad.Validate(); err == nil {
		t.Error("MinCoverage > 1 accepted")
	}
	bad.MinCoverage = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative MinCoverage accepted")
	}
}

// TestPartialClassificationMatchesCleanForCoveredKernels is the
// acceptance property: a faulty sweep with no retries must classify
// every fully covered kernel byte-identically to a fault-free sweep.
func TestPartialClassificationMatchesCleanForCoveredKernels(t *testing.T) {
	space := partialSpace(t)
	ks := partialKernels()
	clean, err := sweep.Run(ks, space, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := fault.Injector{ErrorRate: 0.05, Seed: 2}
	faulty, rep, err := sweep.RunContext(context.Background(), ks, space,
		sweep.Options{Sim: in.Wrap(gcn.Simulate)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 {
		t.Fatal("faulty sweep failed nothing; property vacuous")
	}
	cl := DefaultClassifier()
	cleanCS := cl.ClassifyAll(Surfaces(clean))
	faultyCS := cl.ClassifyAll(Surfaces(faulty))
	covered := 0
	for i := range ks {
		if !faulty.RowComplete(i) {
			continue
		}
		covered++
		if !reflect.DeepEqual(cleanCS[i], faultyCS[i]) {
			t.Fatalf("kernel %s fully covered but classified differently:\nclean  %+v\nfaulty %+v",
				ks[i].Name, cleanCS[i], faultyCS[i])
		}
	}
	if covered == 0 {
		t.Fatal("no kernel survived fully covered; property vacuous")
	}
}
