package core

import (
	"math"
	"strings"
	"testing"

	"gpuscale/internal/hw"
)

func TestSaturationPoint(t *testing.T) {
	space := hw.StudySpace()
	lim := surfaceFromModel("lim", space, modelParallelismLimited).Marginal(AxisCU)
	// The model saturates at 12 CUs.
	if got := SaturationPoint(lim, 0.95); got != 12 {
		t.Errorf("SaturationPoint(limited) = %g, want 12", got)
	}
	lin := surfaceFromModel("lin", space, modelCompCoupled).Marginal(AxisCU)
	if got := SaturationPoint(lin, 0.95); got < 40 {
		t.Errorf("SaturationPoint(linear) = %g, want near the top", got)
	}
	if got := SaturationPoint(AxisResponse{}, 0.95); got != 0 {
		t.Errorf("SaturationPoint(empty) = %g, want 0", got)
	}
}

func TestAnalyzeSuiteVerdicts(t *testing.T) {
	space := hw.StudySpace()
	legacy := []Surface{
		surfaceFromModel("a", space, modelParallelismLimited),
		surfaceFromModel("b", space, modelParallelismLimited),
		surfaceFromModel("c", space, modelLaunchBound),
		surfaceFromModel("d", space, modelCompCoupled),
	}
	r, err := AnalyzeSuite("legacy", legacy)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scales {
		t.Errorf("legacy suite marked as scaling: %+v", r)
	}
	if r.SaturatedEarlyFraction != 0.75 {
		t.Errorf("early fraction = %g, want 0.75", r.SaturatedEarlyFraction)
	}
	if r.Kernels != 4 {
		t.Errorf("kernels = %d, want 4", r.Kernels)
	}

	modern := []Surface{
		surfaceFromModel("a", space, modelCompCoupled),
		surfaceFromModel("b", space, modelCompCoupled),
		surfaceFromModel("c", space, modelParallelismLimited),
	}
	r2, err := AnalyzeSuite("modern", modern)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Scales {
		t.Errorf("modern suite marked as not scaling: %+v", r2)
	}
	if math.Abs(r2.MedianCUEfficiency-1) > 1e-9 {
		t.Errorf("median efficiency = %g, want 1", r2.MedianCUEfficiency)
	}
}

func TestAnalyzeSuiteEmpty(t *testing.T) {
	if _, err := AnalyzeSuite("x", nil); err == nil {
		t.Error("empty suite accepted")
	}
}

func TestAnalyzeSuitesGroupingAndOrder(t *testing.T) {
	space := hw.StudySpace()
	ss := []Surface{
		surfaceFromModel("zeta.k1", space, modelCompCoupled),
		surfaceFromModel("alpha.k1", space, modelLaunchBound),
		surfaceFromModel("zeta.k2", space, modelCompCoupled),
	}
	suiteOf := func(k string) string { return strings.SplitN(k, ".", 2)[0] }
	rs, err := AnalyzeSuites(ss, suiteOf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Suite != "alpha" || rs[1].Suite != "zeta" {
		t.Fatalf("AnalyzeSuites order/grouping wrong: %+v", rs)
	}
	if rs[1].Kernels != 2 {
		t.Errorf("zeta kernels = %d, want 2", rs[1].Kernels)
	}
	if _, err := AnalyzeSuites(ss, func(string) string { return "" }); err == nil {
		t.Error("missing suite mapping accepted")
	}
}

func TestCUEfficiencyQuartiles(t *testing.T) {
	space := hw.StudySpace()
	ss := []Surface{
		surfaceFromModel("a", space, modelCompCoupled),        // eff 1
		surfaceFromModel("b", space, modelLaunchBound),        // eff ~1/11
		surfaceFromModel("c", space, modelParallelismLimited), // eff ~3/11
	}
	q25, q50, q75 := CUEfficiencyQuartiles(ss)
	if !(q25 <= q50 && q50 <= q75) {
		t.Fatalf("quartiles not ordered: %g %g %g", q25, q50, q75)
	}
	if q75 < 0.5 {
		t.Errorf("q75 = %g, want the linear kernel to dominate", q75)
	}
}
