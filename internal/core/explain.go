package core

import (
	"fmt"
	"strings"
)

// Explain renders a human-readable rationale for a classification:
// what each axis did and why the combined category follows. The cmd
// tools print it next to raw curves so users don't have to re-derive
// the decision tree by hand.
func (c Classification) Explain() string {
	var b strings.Builder
	axis := func(name string, r AxisResponse, s Shape) {
		fmt.Fprintf(&b, "  %-9s %-12s %.1fx over a %.1fx range (efficiency %.0f%%",
			name, s.String()+":", r.Gain, r.IdealGain, 100*r.Efficiency)
		if s == PeakDecline {
			fmt.Fprintf(&b, ", peak %.1fx at %g", r.PeakGain, r.Settings[r.PeakIndex])
		}
		b.WriteString(")\n")
	}
	fmt.Fprintf(&b, "%s -> %s\n", c.Kernel, c.Category)
	axis("CUs", c.CU, c.CUShape)
	axis("coreclk", c.Core, c.CoreShape)
	axis("memclk", c.Mem, c.MemShape)
	fmt.Fprintf(&b, "  because: %s\n", categoryRationale(c))
	return b.String()
}

// categoryRationale states the decision in one sentence.
func categoryRationale(c Classification) string {
	switch c.Category {
	case CUIntolerant:
		return fmt.Sprintf(
			"performance peaks at %g CUs and then falls — adding CUs grows the shared-L2 footprint faster than it adds throughput",
			c.CU.Settings[c.CU.PeakIndex])
	case LaunchBound:
		return "no knob moves performance; fixed launch overhead dominates"
	case BWCoupled:
		return "memory bandwidth is the binding resource; compute-side knobs saturate"
	case ParallelismLimited:
		return "the launch cannot fill the added compute units; CU scaling stops early"
	case CompCoupled:
		return "performance tracks CUs x core clock; memory bandwidth is slack"
	case LatencyBound:
		return "serialised memory latency dominates: neither clock buys much, but more CUs add concurrent chains"
	case Balanced:
		return "several knobs pay with diminishing returns; the kernel crosses the roofline inside the sweep range"
	default:
		return "the response matches none of the canonical shapes"
	}
}
