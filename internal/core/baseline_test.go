package core

import (
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

func TestRooflineBaseline(t *testing.T) {
	hot := kernel.New("s", "p", "hot").Compute(50000, 0).
		Access(kernel.Streaming, 8, 2, 4).MustBuild()
	if got := RooflineBaseline(hot); got != BaselineCompute {
		t.Errorf("high-intensity kernel = %v, want compute", got)
	}
	cold := kernel.New("s", "p", "cold").Compute(100, 0).
		Access(kernel.Streaming, 256, 64, 4).MustBuild()
	if got := RooflineBaseline(cold); got != BaselineMemory {
		t.Errorf("low-intensity kernel = %v, want memory", got)
	}
	pure := kernel.New("s", "p", "pure").Access(kernel.Streaming, 0, 0, 0).MLP(0).MustBuild()
	if got := RooflineBaseline(pure); got != BaselineCompute {
		t.Errorf("pure-compute kernel = %v, want compute", got)
	}
}

func TestBaselineClassString(t *testing.T) {
	if BaselineCompute.String() != "compute" || BaselineMemory.String() != "memory" {
		t.Error("baseline class names wrong")
	}
}

func TestBaselineConfusion(t *testing.T) {
	space := hw.StudySpace()
	hot := kernel.New("s", "p", "hot").Compute(50000, 0).
		Access(kernel.Streaming, 8, 2, 4).MustBuild()
	cs := []Classification{
		{Kernel: hot.Name, Category: LatencyBound},
		{Kernel: hot.Name, Category: LatencyBound},
		{Kernel: "missing", Category: CompCoupled},
	}
	_ = space
	conf := BaselineConfusion(cs, map[string]*kernel.Kernel{hot.Name: hot})
	if conf[LatencyBound][BaselineCompute] != 2 {
		t.Fatalf("confusion = %v", conf)
	}
	if _, ok := conf[CompCoupled]; ok {
		t.Fatal("kernel missing from map still counted")
	}
}

func TestBaselineCannotExpressNonObviousClasses(t *testing.T) {
	// The demonstration the baseline experiment makes: a latency-bound
	// and a compute-coupled kernel can share a baseline class while the
	// taxonomy separates them.
	chase := kernel.New("s", "p", "chase").
		Geometry(2048, 64).
		Resources(32, 48, 64*1024).
		Compute(60000, 100).
		Access(kernel.PointerChase, 100, 0, 1).
		Coalescing(1).
		Locality(16<<20, 0, 0).
		MLP(1).DepChain(1).
		MustBuild()
	dense := kernel.New("s", "p", "dense").Compute(60000, 100).
		Access(kernel.Tiled, 100, 10, 4).MustBuild()
	if RooflineBaseline(chase) != RooflineBaseline(dense) {
		t.Skip("test premise broken: pick parameters that share a baseline class")
	}
	// Same static class, different dynamic behaviour — the taxonomy's
	// value proposition. (The dynamic difference itself is asserted in
	// the integration tests.)
}
