package memory

import (
	"math"
	"math/rand"
	"testing"

	"gpuscale/internal/hw"
)

func sequentialTrace(lines int) []uint64 {
	out := make([]uint64, lines)
	for i := range out {
		out[i] = uint64(i) * hw.L2LineBytes
	}
	return out
}

func randomTrace(lines int, span uint64, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, lines)
	for i := range out {
		out[i] = uint64(rng.Int63n(int64(span/hw.L2LineBytes))) * hw.L2LineBytes
	}
	return out
}

func stridedTrace(lines, strideLines int) []uint64 {
	out := make([]uint64, lines)
	for i := range out {
		out[i] = uint64(i*strideLines) * hw.L2LineBytes
	}
	return out
}

func TestNewDRAMSimRejectsBadConfig(t *testing.T) {
	if _, err := NewDRAMSim(hw.Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestStreamingEfficiencyHigh(t *testing.T) {
	eff, rowHit, err := MeasureEfficiency(hw.Reference(), sequentialTrace(100000))
	if err != nil {
		t.Fatal(err)
	}
	if eff < 0.75 || eff > 1.0 {
		t.Errorf("streaming efficiency = %.3f, want 0.75..1.0", eff)
	}
	if rowHit < 0.9 {
		t.Errorf("streaming row-hit rate = %.3f, want > 0.9", rowHit)
	}
}

func TestRandomEfficiencyLow(t *testing.T) {
	eff, rowHit, err := MeasureEfficiency(hw.Reference(), randomTrace(100000, 1<<30, 7))
	if err != nil {
		t.Fatal(err)
	}
	if eff > 0.5 {
		t.Errorf("random efficiency = %.3f, want < 0.5", eff)
	}
	if rowHit > 0.1 {
		t.Errorf("random row-hit rate = %.3f, want ~0", rowHit)
	}
}

func TestStridePhenomena(t *testing.T) {
	stream, _, err := MeasureEfficiency(hw.Reference(), sequentialTrace(50000))
	if err != nil {
		t.Fatal(err)
	}
	// A stride coprime with the channel count keeps channels balanced;
	// bank parallelism hides its extra activations, so line-level
	// efficiency stays near streaming (the *payload waste* of strided
	// access is charged separately via TransactionBytesPerWave).
	coprime, _, err := MeasureEfficiency(hw.Reference(), stridedTrace(50000, 9))
	if err != nil {
		t.Fatal(err)
	}
	if coprime < stream*0.8 {
		t.Errorf("coprime stride efficiency %.3f << streaming %.3f", coprime, stream)
	}
	// A power-of-2 stride camps on one channel: efficiency collapses
	// to at most 1/DRAMChannels.
	camping, _, err := MeasureEfficiency(hw.Reference(), stridedTrace(50000, DRAMChannels))
	if err != nil {
		t.Fatal(err)
	}
	if camping > 1.0/DRAMChannels+0.02 {
		t.Errorf("channel-camping stride efficiency %.3f, want <= %.3f",
			camping, 1.0/DRAMChannels+0.02)
	}
	// Random access is activation-rate limited (tFAW) well below
	// streaming.
	random, _, err := MeasureEfficiency(hw.Reference(), randomTrace(50000, 1<<30, 7))
	if err != nil {
		t.Fatal(err)
	}
	if random > stream*0.6 {
		t.Errorf("random efficiency %.3f not clearly below streaming %.3f", random, stream)
	}
}

func TestEfficiencyScalesWithMemClock(t *testing.T) {
	// Efficiency is a fraction of peak; both peak and timing scale
	// with the memory clock, so the fraction should be nearly clock-
	// invariant for a fixed pattern.
	lo := hw.Config{CUs: 44, CoreClockMHz: 1000, MemClockMHz: 150}
	hi := hw.Config{CUs: 44, CoreClockMHz: 1000, MemClockMHz: 1250}
	effLo, _, err := MeasureEfficiency(lo, sequentialTrace(50000))
	if err != nil {
		t.Fatal(err)
	}
	effHi, _, err := MeasureEfficiency(hi, sequentialTrace(50000))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(effLo-effHi) > 0.02 {
		t.Errorf("efficiency fraction not clock-invariant: %.3f vs %.3f", effLo, effHi)
	}
}

func TestChannelsSpreadSequentialLines(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < DRAMChannels; i++ {
		ch, _, _ := locate(uint64(i) * hw.L2LineBytes)
		seen[ch] = true
	}
	if len(seen) != DRAMChannels {
		t.Errorf("sequential lines touched %d channels, want %d", len(seen), DRAMChannels)
	}
}

func TestRowLocality(t *testing.T) {
	// Consecutive lines on the same channel (stride DRAMChannels
	// lines) share a row until the row boundary.
	linesPerRow := DRAMRowBytes / hw.L2LineBytes
	ch0, b0, r0 := locate(0)
	ch1, b1, r1 := locate(uint64(DRAMChannels) * hw.L2LineBytes)
	if ch0 != ch1 || b0 != b1 || r0 != r1 {
		t.Errorf("adjacent channel-lines split rows: (%d,%d,%d) vs (%d,%d,%d)",
			ch0, b0, r0, ch1, b1, r1)
	}
	_, bN, rN := locate(uint64(DRAMChannels*linesPerRow) * hw.L2LineBytes)
	if bN == b0 && rN == r0 {
		t.Error("row boundary did not advance bank/row")
	}
}

func TestServiceLineAccounting(t *testing.T) {
	d, err := NewDRAMSim(hw.Reference())
	if err != nil {
		t.Fatal(err)
	}
	done1 := d.ServiceLine(0, 0)
	done2 := d.ServiceLine(0, 0) // same line: row hit, queued behind
	if done2 <= done1 {
		t.Errorf("queued access finished at %g, before/at previous %g", done2, done1)
	}
	if d.Lines() != 2 {
		t.Errorf("Lines() = %d, want 2", d.Lines())
	}
	if d.RowHitRate() != 0.5 {
		t.Errorf("RowHitRate() = %g, want 0.5 (first misses, second hits)", d.RowHitRate())
	}
	if d.Drain() != done2 {
		t.Errorf("Drain() = %g, want %g", d.Drain(), done2)
	}
}

func TestMeasureEfficiencyEmpty(t *testing.T) {
	if _, _, err := MeasureEfficiency(hw.Reference(), nil); err == nil {
		t.Error("empty trace accepted")
	}
}
