package memory

import (
	"fmt"

	"gpuscale/internal/hw"
)

// DRAMSim is an event-level GDDR5 channel model: the 512-bit interface
// is split into 8 independent 64-bit channels, each with banks and an
// open-row policy. It exists to *derive* the pattern-efficiency
// constants the analytic engine uses (PatternEfficiency) rather than
// assert them: replaying a synthetic address trace through DRAMSim
// yields an achieved-bandwidth fraction that the ablation experiment
// compares against the constant.
type DRAMSim struct {
	clockNS    float64
	burstNS    float64
	rowMissNS  float64
	channels   []dramChannel
	linesTotal uint64
	rowHits    uint64
}

// dramChannel is one 64-bit sub-channel. The data bus (busyUntil) and
// the banks (bankReady) are separate resources: a row activation in
// one bank overlaps bursts from another, as on real parts; a tFAW-like
// window bounds how fast activations can be issued.
type dramChannel struct {
	busyUntil  float64
	openRow    []int64   // per bank; -1 = closed
	bankReady  []float64 // per bank: earliest next use
	activaskew []float64 // ring of the last activation times (tFAW)
	activIdx   int
}

// DRAM geometry and timing, GDDR5-flavoured.
const (
	// DRAMChannels splits the 512-bit bus into 64-bit channels.
	DRAMChannels = 8
	// DRAMBanksPerChannel is banks per channel.
	DRAMBanksPerChannel = 16
	// DRAMRowBytes is the row-buffer size.
	DRAMRowBytes = 2048
	// dramBurstClocks is memory clocks to burst one 64 B line over a
	// 64-bit channel at 4x data rate (32 B per clock).
	dramBurstClocks = 2
	// dramRowMissClocks is the activate penalty in memory clocks
	// (tRCD; precharge overlaps under the open-row policy).
	dramRowMissClocks = 12
	// dramFAWActivations bounds activations per tFAW window.
	dramFAWActivations = 4
	// dramFAWClocks is the tFAW window in memory clocks.
	dramFAWClocks = 26
)

// NewDRAMSim builds the simulator for one configuration's memory
// clock.
func NewDRAMSim(cfg hw.Config) (*DRAMSim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	clock := 1000 / cfg.MemClockMHz // ns per memory clock
	d := &DRAMSim{
		clockNS:   clock,
		burstNS:   dramBurstClocks * clock,
		rowMissNS: dramRowMissClocks * clock,
		channels:  make([]dramChannel, DRAMChannels),
	}
	for i := range d.channels {
		rows := make([]int64, DRAMBanksPerChannel)
		for b := range rows {
			rows[b] = -1
		}
		d.channels[i].openRow = rows
		d.channels[i].bankReady = make([]float64, DRAMBanksPerChannel)
		d.channels[i].activaskew = make([]float64, dramFAWActivations)
		for j := range d.channels[i].activaskew {
			d.channels[i].activaskew[j] = -1e18
		}
	}
	return d, nil
}

// locate maps a byte address to (channel, bank, row). Lines interleave
// across channels; within a channel, consecutive lines fill a row
// before moving to the next bank.
func locate(addr uint64) (ch, bank int, row int64) {
	line := addr / hw.L2LineBytes
	ch = int(line % DRAMChannels)
	channelLine := line / DRAMChannels
	linesPerRow := uint64(DRAMRowBytes / hw.L2LineBytes)
	rowIdx := channelLine / linesPerRow
	bank = int(rowIdx % DRAMBanksPerChannel)
	row = int64(rowIdx / DRAMBanksPerChannel)
	return ch, bank, row
}

// ServiceLine schedules one 64-byte line transfer issued at time `now`
// and returns its completion time. Row hits pay only the burst on the
// shared data bus; row misses first activate the row in the target
// bank (overlapping other banks' bursts, rate-limited by tFAW).
func (d *DRAMSim) ServiceLine(addr uint64, now float64) float64 {
	ch, bank, row := locate(addr)
	c := &d.channels[ch]
	d.linesTotal++

	ready := now
	if c.bankReady[bank] > ready {
		ready = c.bankReady[bank]
	}
	if c.openRow[bank] == row {
		d.rowHits++
	} else {
		// Activation: respect the tFAW window, then pay tRCD in the
		// bank while the bus keeps streaming other banks.
		actStart := ready
		if faw := c.activaskew[c.activIdx] + float64(dramFAWClocks)*d.clockNS; faw > actStart {
			actStart = faw
		}
		c.activaskew[c.activIdx] = actStart
		c.activIdx = (c.activIdx + 1) % dramFAWActivations
		ready = actStart + d.rowMissNS
		c.openRow[bank] = row
	}

	busStart := ready
	if c.busyUntil > busStart {
		busStart = c.busyUntil
	}
	c.busyUntil = busStart + d.burstNS
	c.bankReady[bank] = c.busyUntil
	return c.busyUntil
}

// Drain returns the time at which every channel goes idle.
func (d *DRAMSim) Drain() float64 {
	t := 0.0
	for i := range d.channels {
		if d.channels[i].busyUntil > t {
			t = d.channels[i].busyUntil
		}
	}
	return t
}

// RowHitRate returns the fraction of serviced lines that hit an open
// row.
func (d *DRAMSim) RowHitRate() float64 {
	if d.linesTotal == 0 {
		return 0
	}
	return float64(d.rowHits) / float64(d.linesTotal)
}

// Lines returns the number of serviced lines.
func (d *DRAMSim) Lines() uint64 { return d.linesTotal }

// EfficiencyWindow is the number of outstanding line requests the
// efficiency probe keeps in flight — a memory-controller queue depth.
// A finite window is what makes activation latency cost throughput
// for low-locality patterns.
const EfficiencyWindow = 64

// MeasureEfficiency replays a line-address trace with a bounded
// in-flight window (EfficiencyWindow outstanding lines) and returns
// achieved bandwidth as a fraction of the configuration's peak, plus
// the row-hit rate.
func MeasureEfficiency(cfg hw.Config, addrs []uint64) (efficiency, rowHitRate float64, err error) {
	if len(addrs) == 0 {
		return 0, 0, fmt.Errorf("memory: empty trace")
	}
	d, err := NewDRAMSim(cfg)
	if err != nil {
		return 0, 0, err
	}
	// completions is a sliding window of in-flight completion times;
	// a new request issues when the oldest outstanding one retires.
	completions := make([]float64, 0, EfficiencyWindow)
	now := 0.0
	for i, a := range addrs {
		if len(completions) == EfficiencyWindow {
			now = completions[0]
			completions = completions[1:]
		}
		done := d.ServiceLine(a, now)
		// Insert keeping the window sorted (it nearly always appends).
		pos := len(completions)
		for pos > 0 && completions[pos-1] > done {
			pos--
		}
		completions = append(completions, 0)
		copy(completions[pos+1:], completions[pos:])
		completions[pos] = done
		_ = i
	}
	makespan := d.Drain()
	bytes := float64(len(addrs)) * hw.L2LineBytes
	achieved := bytes / makespan // bytes/ns == GB/s
	return achieved / cfg.PeakBandwidthGBs(), d.RowHitRate(), nil
}
