package memory

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, capacity, line, ways int) *Cache {
	t.Helper()
	c, err := NewCache(capacity, line, ways)
	if err != nil {
		t.Fatalf("NewCache(%d,%d,%d): %v", capacity, line, ways, err)
	}
	return c
}

func TestNewCacheRejectsBadGeometry(t *testing.T) {
	cases := [][3]int{
		{0, 64, 4}, {1024, 0, 4}, {1024, 64, 0},
		{1000, 64, 4},       // not a multiple
		{64 * 4 * 3, 64, 4}, // 3 sets, not a power of two
		{64 * 4 * 4, 48, 4}, // line not a power of two
	}
	for _, c := range cases {
		if _, err := NewCache(c[0], c[1], c[2]); err == nil {
			t.Errorf("NewCache(%v) succeeded, want error", c)
		}
	}
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := mustCache(t, 4096, 64, 4)
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) {
		t.Fatal("second access missed")
	}
	if !c.Access(63) {
		t.Fatal("same-line access missed")
	}
	if c.Access(64) {
		t.Fatal("next-line cold access hit")
	}
	hits, misses, _ := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats = %d hits/%d misses, want 2/2", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct calculation: 2 ways, 1 set (capacity = 2 lines).
	c := mustCache(t, 128, 64, 2)
	c.Access(0 * 64) // A
	c.Access(1 * 64) // B
	c.Access(0 * 64) // touch A; B is now LRU
	c.Access(2 * 64) // C evicts B
	if !c.Access(0 * 64) {
		t.Error("A evicted, want retained (was MRU)")
	}
	if c.Access(1 * 64) {
		t.Error("B retained, want evicted (was LRU)")
	}
	_, _, ev := c.Stats()
	if ev < 1 {
		t.Errorf("evictions = %d, want >= 1", ev)
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	// A working set equal to capacity, accessed repeatedly in order,
	// must reach a perfect hit rate after the cold pass.
	c := mustCache(t, 16*1024, 64, 4)
	lines := 16 * 1024 / 64
	for pass := 0; pass < 4; pass++ {
		for l := 0; l < lines; l++ {
			c.Access(uint64(l * 64))
		}
	}
	hits, misses, _ := c.Stats()
	if misses != uint64(lines) {
		t.Errorf("misses = %d, want %d (cold only)", misses, lines)
	}
	if hits != uint64(3*lines) {
		t.Errorf("hits = %d, want %d", hits, 3*lines)
	}
}

func TestCacheThrashingWorkingSet(t *testing.T) {
	// Sequential sweep of 2x capacity with true LRU never hits.
	c := mustCache(t, 4096, 64, 4)
	lines := 2 * 4096 / 64
	for pass := 0; pass < 3; pass++ {
		for l := 0; l < lines; l++ {
			c.Access(uint64(l * 64))
		}
	}
	if hr := c.HitRate(); hr != 0 {
		t.Errorf("hit rate = %g, want 0 under LRU thrash", hr)
	}
}

func TestCacheReset(t *testing.T) {
	c := mustCache(t, 4096, 64, 4)
	c.Access(0)
	c.Access(0)
	c.Reset()
	hits, misses, ev := c.Stats()
	if hits != 0 || misses != 0 || ev != 0 {
		t.Fatal("Reset did not clear stats")
	}
	if c.Access(0) {
		t.Fatal("Reset did not clear contents")
	}
}

func TestCacheHitRateBounds(t *testing.T) {
	c := mustCache(t, 4096, 64, 4)
	if hr := c.HitRate(); hr != 0 {
		t.Fatalf("empty cache hit rate = %g", hr)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		c.Access(uint64(rng.Intn(1 << 20)))
	}
	if hr := c.HitRate(); hr < 0 || hr > 1 {
		t.Fatalf("hit rate out of bounds: %g", hr)
	}
}

func TestCacheAccountingInvariant(t *testing.T) {
	// Property: hits+misses equals accesses, and evictions never
	// exceed misses.
	f := func(seed int64, n uint16) bool {
		c, err := NewCache(8192, 64, 8)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		total := uint64(n)%2000 + 1
		for i := uint64(0); i < total; i++ {
			c.Access(uint64(rng.Intn(1 << 18)))
		}
		hits, misses, ev := c.Stats()
		return hits+misses == total && ev <= misses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCacheCapacityAccessors(t *testing.T) {
	c := mustCache(t, 4096, 64, 4)
	if got := c.CapacityBytes(); got != 4096 {
		t.Errorf("CapacityBytes() = %d, want 4096", got)
	}
	if got := c.LineBytes(); got != 64 {
		t.Errorf("LineBytes() = %d, want 64", got)
	}
}
