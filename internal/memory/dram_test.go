package memory

import (
	"math"
	"testing"
	"testing/quick"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

func TestPatternEfficiencyOrdering(t *testing.T) {
	order := []kernel.AccessPattern{
		kernel.Streaming, kernel.Tiled, kernel.Strided, kernel.Gather, kernel.PointerChase,
	}
	for i := 1; i < len(order); i++ {
		if PatternEfficiency(order[i]) > PatternEfficiency(order[i-1]) {
			t.Errorf("efficiency(%v) > efficiency(%v)", order[i], order[i-1])
		}
	}
	for _, p := range order {
		e := PatternEfficiency(p)
		if e <= 0 || e > 1 {
			t.Errorf("efficiency(%v) = %g out of range", p, e)
		}
	}
}

func TestEffectiveBandwidthScalesWithMemClock(t *testing.T) {
	lo := NewHierarchy(hw.Config{CUs: 44, CoreClockMHz: 1000, MemClockMHz: 150})
	hi := NewHierarchy(hw.Config{CUs: 44, CoreClockMHz: 1000, MemClockMHz: 1250})
	rl := lo.EffectiveBandwidthGBs(kernel.Streaming)
	rh := hi.EffectiveBandwidthGBs(kernel.Streaming)
	if ratio := rh / rl; math.Abs(ratio-1250.0/150) > 1e-9 {
		t.Fatalf("bandwidth ratio = %g, want %g", ratio, 1250.0/150)
	}
}

func TestDRAMLatencyMonotonicInUtilization(t *testing.T) {
	h := NewHierarchy(hw.Reference())
	prev := 0.0
	for u := 0.0; u <= 1.0; u += 0.05 {
		l := h.DRAMLatencyNS(u)
		if l < prev {
			t.Fatalf("latency fell from %g to %g at u=%g", prev, l, u)
		}
		prev = l
	}
}

func TestDRAMLatencyCapped(t *testing.T) {
	h := NewHierarchy(hw.Reference())
	unloaded := h.DRAMLatencyNS(0)
	saturated := h.DRAMLatencyNS(1)
	if saturated > unloaded+DRAMDeviceNS*MaxQueueFactor {
		t.Fatalf("saturated latency %g exceeds cap", saturated)
	}
	if saturated <= unloaded {
		t.Fatalf("saturation added no latency: %g vs %g", saturated, unloaded)
	}
}

func TestCacheLatencyScalesWithCoreClock(t *testing.T) {
	fast := NewHierarchy(hw.Config{CUs: 44, CoreClockMHz: 1000, MemClockMHz: 1250})
	slow := NewHierarchy(hw.Config{CUs: 44, CoreClockMHz: 200, MemClockMHz: 1250})
	if r := slow.L1LatencyNS() / fast.L1LatencyNS(); math.Abs(r-5) > 1e-9 {
		t.Errorf("L1 latency ratio = %g, want 5 (core-domain)", r)
	}
	if r := slow.L2LatencyNS() / fast.L2LatencyNS(); math.Abs(r-5) > 1e-9 {
		t.Errorf("L2 latency ratio = %g, want 5 (core-domain)", r)
	}
	// DRAM latency contains a fixed device portion, so it must stretch
	// by strictly less than the clock ratio.
	rd := slow.DRAMLatencyNS(0) / fast.DRAMLatencyNS(0)
	if rd >= 5 || rd <= 1 {
		t.Errorf("DRAM latency ratio = %g, want in (1,5)", rd)
	}
}

func TestAvgAccessLatencyBlending(t *testing.T) {
	h := NewHierarchy(hw.Reference())
	allL1 := h.AvgAccessLatencyNS(HitRates{L1: 1}, 0)
	if math.Abs(allL1-h.L1LatencyNS()) > 1e-9 {
		t.Errorf("all-L1 latency = %g, want %g", allL1, h.L1LatencyNS())
	}
	allDRAM := h.AvgAccessLatencyNS(HitRates{}, 0)
	if math.Abs(allDRAM-h.DRAMLatencyNS(0)) > 1e-9 {
		t.Errorf("all-DRAM latency = %g, want %g", allDRAM, h.DRAMLatencyNS(0))
	}
	mid := h.AvgAccessLatencyNS(HitRates{L1: 0.5, L2: 0.5}, 0)
	if mid <= allL1 || mid >= allDRAM {
		t.Errorf("blended latency %g outside (%g, %g)", mid, allL1, allDRAM)
	}
}

func TestAvgAccessLatencyMonotonicInMissRate(t *testing.T) {
	h := NewHierarchy(hw.Reference())
	f := func(a, b float64) bool {
		l1a := math.Abs(math.Mod(a, 1))
		l1b := math.Abs(math.Mod(b, 1))
		lo, hi := math.Min(l1a, l1b), math.Max(l1a, l1b)
		// Higher L1 hit rate (same L2) never increases latency.
		return h.AvgAccessLatencyNS(HitRates{L1: hi, L2: 0.5}, 0.5) <=
			h.AvgAccessLatencyNS(HitRates{L1: lo, L2: 0.5}, 0.5)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccessModelMatchesAvgAccessLatency(t *testing.T) {
	cfgs := []hw.Config{
		{CUs: 4, CoreClockMHz: 200, MemClockMHz: 150},
		{CUs: 44, CoreClockMHz: 1000, MemClockMHz: 1250},
		hw.Reference(),
	}
	f := func(l1, l2, u float64) bool {
		hr := HitRates{L1: math.Mod(math.Abs(l1), 1), L2: math.Mod(math.Abs(l2), 1)}
		util := math.Mod(math.Abs(u), 1.2) // exercise the clamp too
		for _, cfg := range cfgs {
			h := NewHierarchy(cfg)
			want := h.AvgAccessLatencyNS(hr, util)
			m := h.AccessModel(hr)
			got := m.LatencyNS(util)
			if math.Float64bits(want) != math.Float64bits(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
