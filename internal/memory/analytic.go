package memory

import (
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// HitRates carries the analytic hit-rate estimate for both cache
// levels. L2 is conditional on an L1 miss.
type HitRates struct {
	// L1 is the per-CU vector-cache hit rate.
	L1 float64
	// L2 is the shared-cache hit rate among L1 misses.
	L2 float64
}

// DRAMFraction returns the fraction of issued accesses that reach DRAM.
func (h HitRates) DRAMFraction() float64 {
	return (1 - h.L1) * (1 - h.L2)
}

// patternSpatialQuality scales temporal-reuse capture by how well the
// pattern packs into cache lines: irregular patterns spread the same
// working set over more lines, so a given capacity captures less of it.
func patternSpatialQuality(p kernel.AccessPattern) float64 {
	switch p {
	case kernel.Streaming:
		return 1
	case kernel.Tiled:
		return 1
	case kernel.Strided:
		return 0.6
	case kernel.Gather:
		return 0.4
	case kernel.PointerChase:
		return 0.35
	default:
		return 0.5
	}
}

// EstimateHitRates predicts L1 and L2 hit rates for a kernel given how
// many of its workgroups are resident per CU and how many CUs are
// enabled. The model is capacity-based:
//
//   - Every distinct byte is touched 1+reuse times; first touches miss
//     (compulsory), re-touches hit if the footprint fits.
//   - The L1 sees the working sets of the workgroups resident on its
//     CU; the fraction that fits scales the reuse captured.
//   - The L2 sees the aggregate footprint of every resident workgroup
//     on every CU, reduced by the cross-workgroup shared fraction.
//     This is the term that grows with CU count and produces the
//     paper's "performance loss with more CUs" class: when the
//     aggregate overflows the fixed L2, the DRAM traffic per unit of
//     work rises with every CU added.
//   - Shared data earns extra L2 hits because other workgroups'
//     first touches become hits after the first workgroup faults the
//     data in.
func EstimateHitRates(k *kernel.Kernel, residentWGsPerCU, cus int) HitRates {
	return EstimateHitRatesL2(k, residentWGsPerCU, cus, hw.L2Bytes)
}

// EstimateHitRatesL2 is EstimateHitRates with an explicit shared-L2
// capacity, for what-if experiments on hypothetical cache scaling.
func EstimateHitRatesL2(k *kernel.Kernel, residentWGsPerCU, cus, l2Bytes int) HitRates {
	if k.MemAccessesPerWave() == 0 {
		return HitRates{}
	}
	reuse := k.Mem.ReuseFactor
	quality := patternSpatialQuality(k.Mem.Pattern)

	// Re-touch fraction of all accesses: reuse/(1+reuse).
	retouch := reuse / (1 + reuse)

	// --- L1: per-CU, sees resident workgroups' private sets. ---
	l1Footprint := float64(k.Mem.WorkingSetPerWG) * float64(maxInt(residentWGsPerCU, 1))
	l1Fit := fitFraction(float64(hw.L1BytesPerCU), l1Footprint)
	l1 := retouch * l1Fit * quality

	// --- L2: shared, sees every CU's resident footprint. ---
	shared := k.Mem.SharedFraction
	perWGPrivate := float64(k.Mem.WorkingSetPerWG) * (1 - shared)
	sharedSet := float64(k.Mem.WorkingSetPerWG) * shared
	aggregate := perWGPrivate*float64(residentWGsPerCU*cus) + sharedSet
	l2Fit := fitFraction(float64(l2Bytes), aggregate)

	// Among L1 misses: leftover temporal reuse the L1 could not hold,
	// plus cross-workgroup sharing hits.
	leftoverReuse := retouch * (1 - l1Fit) * quality
	crossWG := shared * 0.9 // first faulter misses; later workgroups hit
	l2 := (leftoverReuse + crossWG*(1-leftoverReuse)) * l2Fit

	return HitRates{L1: clamp01(l1), L2: clamp01(l2)}
}

// fitFraction returns how much of a footprint a capacity covers, in
// (0,1]. A footprint of zero fits entirely.
func fitFraction(capacity, footprint float64) float64 {
	if footprint <= capacity {
		return 1
	}
	return capacity / footprint
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
