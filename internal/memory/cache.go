// Package memory models the GPU memory hierarchy: set-associative
// caches (simulated exactly in trace mode and approximated analytically
// in sweep mode), a GDDR5 DRAM channel model with pattern-dependent
// efficiency and queueing, and the hierarchy facade the timing engine
// queries.
package memory

import (
	"fmt"
	"math/bits"
)

// Cache is an exact set-associative cache with true-LRU replacement.
// It is used by the trace-driven fidelity mode and by tests that
// validate the analytic hit-rate model; the sweep engine uses the
// analytic model for speed.
type Cache struct {
	lineBytes int
	sets      int
	ways      int
	// tags[set*ways+way] holds the line tag; valid bit folded in by
	// using tag 0 = invalid (addresses are offset to avoid tag 0).
	tags []uint64
	// lru[set*ways+way] holds a per-set use counter.
	lru     []uint64
	clock   uint64
	hits    uint64
	misses  uint64
	evicted uint64
}

// NewCache builds a cache of the given total capacity, line size, and
// associativity. Capacity must be a multiple of lineBytes*ways and the
// resulting set count must be a power of two.
func NewCache(capacityBytes, lineBytes, ways int) (*Cache, error) {
	if capacityBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("memory: non-positive cache parameter (%d B, %d B lines, %d ways)",
			capacityBytes, lineBytes, ways)
	}
	if capacityBytes%(lineBytes*ways) != 0 {
		return nil, fmt.Errorf("memory: capacity %d not a multiple of line*ways %d",
			capacityBytes, lineBytes*ways)
	}
	sets := capacityBytes / (lineBytes * ways)
	if bits.OnesCount(uint(sets)) != 1 {
		return nil, fmt.Errorf("memory: set count %d not a power of two", sets)
	}
	if bits.OnesCount(uint(lineBytes)) != 1 {
		return nil, fmt.Errorf("memory: line size %d not a power of two", lineBytes)
	}
	return &Cache{
		lineBytes: lineBytes,
		sets:      sets,
		ways:      ways,
		tags:      make([]uint64, sets*ways),
		lru:       make([]uint64, sets*ways),
	}, nil
}

// Access touches one byte address and returns true on hit. A miss
// installs the line, evicting the LRU way if the set is full.
func (c *Cache) Access(addr uint64) bool {
	line := addr/uint64(c.lineBytes) + 1 // +1 keeps tag 0 = invalid
	set := int(line % uint64(c.sets))
	base := set * c.ways
	c.clock++

	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line {
			c.lru[base+w] = c.clock
			c.hits++
			return true
		}
	}
	c.misses++

	// Install: free way if any, else evict LRU.
	victim := -1
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == 0 {
			victim = w
			break
		}
		if c.lru[base+w] < oldest {
			oldest = c.lru[base+w]
			victim = w
		}
	}
	if c.tags[base+victim] != 0 {
		c.evicted++
	}
	c.tags[base+victim] = line
	c.lru[base+victim] = c.clock
	return false
}

// Stats reports cumulative hit, miss, and eviction counts.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evicted
}

// HitRate returns hits/(hits+misses), or 0 with no accesses.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.clock, c.hits, c.misses, c.evicted = 0, 0, 0, 0
}

// LineBytes returns the cache-line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// CapacityBytes returns the total capacity.
func (c *Cache) CapacityBytes() int { return c.sets * c.ways * c.lineBytes }
