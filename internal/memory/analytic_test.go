package memory

import (
	"testing"

	"gpuscale/internal/kernel"
)

func streamKernel(ws int64, shared, reuse float64) *kernel.Kernel {
	return kernel.New("s", "p", "k").
		Locality(ws, shared, reuse).
		MustBuild()
}

func TestHitRatesZeroForPureCompute(t *testing.T) {
	k := kernel.New("s", "p", "k").Access(kernel.Streaming, 0, 0, 0).MLP(0).MustBuild()
	hr := EstimateHitRates(k, 4, 44)
	if hr.L1 != 0 || hr.L2 != 0 {
		t.Fatalf("pure compute hit rates = %+v, want zero", hr)
	}
}

func TestHitRatesBounded(t *testing.T) {
	for _, wgs := range []int{1, 2, 8} {
		for _, cus := range []int{4, 20, 44} {
			for _, ws := range []int64{1024, 64 * 1024, 8 << 20} {
				hr := EstimateHitRates(streamKernel(ws, 0.3, 2), wgs, cus)
				if hr.L1 < 0 || hr.L1 > 1 || hr.L2 < 0 || hr.L2 > 1 {
					t.Fatalf("hit rates out of bounds: %+v (ws=%d wgs=%d cus=%d)", hr, ws, wgs, cus)
				}
			}
		}
	}
}

func TestL2HitRateFallsWithMoreCUs(t *testing.T) {
	// The CU-intolerance mechanism: a working set that overflows L2
	// in aggregate must lose L2 hit rate as CUs are added.
	k := streamKernel(256*1024, 0, 4)
	lo := EstimateHitRates(k, 2, 4)
	hi := EstimateHitRates(k, 2, 44)
	if hi.L2 >= lo.L2 {
		t.Fatalf("L2 hit rate did not fall with CUs: 4 CUs %.3f vs 44 CUs %.3f", lo.L2, hi.L2)
	}
	if lo.DRAMFraction() >= hi.DRAMFraction() {
		t.Fatalf("DRAM fraction did not grow with CUs: %.3f vs %.3f",
			lo.DRAMFraction(), hi.DRAMFraction())
	}
}

func TestL2HitRateStableWhenFits(t *testing.T) {
	// A tiny working set fits at any CU count: adding CUs must not
	// change the estimate (no spurious CU-intolerance).
	k := streamKernel(512, 0, 4)
	lo := EstimateHitRates(k, 2, 4)
	hi := EstimateHitRates(k, 2, 44)
	if lo != hi {
		t.Fatalf("fitting working set changed with CUs: %+v vs %+v", lo, hi)
	}
}

func TestSharedDataRaisesL2(t *testing.T) {
	private := EstimateHitRates(streamKernel(64*1024, 0, 1), 4, 44)
	shared := EstimateHitRates(streamKernel(64*1024, 0.8, 1), 4, 44)
	if shared.L2 <= private.L2 {
		t.Fatalf("shared working set did not raise L2 hit rate: %.3f vs %.3f",
			shared.L2, private.L2)
	}
}

func TestMoreReuseRaisesL1(t *testing.T) {
	lo := EstimateHitRates(streamKernel(8*1024, 0, 0), 1, 4)
	hi := EstimateHitRates(streamKernel(8*1024, 0, 8), 1, 4)
	if hi.L1 <= lo.L1 {
		t.Fatalf("reuse did not raise L1 hit rate: %.3f vs %.3f", lo.L1, hi.L1)
	}
	if lo.L1 != 0 {
		t.Fatalf("no-reuse private stream should have zero L1 hit rate, got %.3f", lo.L1)
	}
}

func TestIrregularPatternsCaptureLessReuse(t *testing.T) {
	mk := func(p kernel.AccessPattern) HitRates {
		k := kernel.New("s", "p", "k").
			Access(p, 64, 16, 4).
			Locality(8*1024, 0, 4).
			MustBuild()
		return EstimateHitRates(k, 1, 4)
	}
	if g, s := mk(kernel.Gather), mk(kernel.Streaming); g.L1 >= s.L1 {
		t.Fatalf("gather L1 %.3f >= streaming L1 %.3f", g.L1, s.L1)
	}
}

func TestDRAMFraction(t *testing.T) {
	hr := HitRates{L1: 0.5, L2: 0.5}
	if got := hr.DRAMFraction(); got != 0.25 {
		t.Fatalf("DRAMFraction() = %g, want 0.25", got)
	}
	if got := (HitRates{}).DRAMFraction(); got != 1 {
		t.Fatalf("cold DRAMFraction() = %g, want 1", got)
	}
}
