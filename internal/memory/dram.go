package memory

import (

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// Latency constants of the modelled hierarchy. Cache and interconnect
// latencies live in the core clock domain (they stretch in wall-clock
// terms when the core slows down); DRAM device latency is fixed in
// nanoseconds. GCN vector-memory latencies are long even on hits.
const (
	// L1HitCycles is vector-L1 hit latency in core cycles.
	L1HitCycles = 60
	// L2HitCycles is L2 hit latency (incl. interconnect) in core cycles.
	L2HitCycles = 160
	// DRAMCoreCycles is the core-domain portion of a DRAM access
	// (L2 miss handling, crossbar traversal).
	DRAMCoreCycles = 120
	// DRAMDeviceNS is the fixed device portion of a DRAM access.
	DRAMDeviceNS = 180
	// MaxQueueFactor caps how far queueing can stretch DRAM latency.
	MaxQueueFactor = 8
)

// PatternEfficiency returns the fraction of peak DRAM bandwidth a
// given access pattern can realise; row-buffer locality and burst
// utilisation degrade from streaming to pointer chasing.
func PatternEfficiency(p kernel.AccessPattern) float64 {
	switch p {
	case kernel.Streaming:
		return 0.88
	case kernel.Tiled:
		return 0.82
	case kernel.Strided:
		return 0.55
	case kernel.Gather:
		return 0.38
	case kernel.PointerChase:
		return 0.30
	default:
		return 0.5
	}
}

// Hierarchy is the analytic memory-system facade the timing engine
// queries: it converts a hardware configuration plus hit rates and
// offered load into effective bandwidth and average access latency.
type Hierarchy struct {
	cfg hw.Config
}

// NewHierarchy builds the facade for one hardware configuration.
func NewHierarchy(cfg hw.Config) Hierarchy {
	return Hierarchy{cfg: cfg}
}

// Config returns the hardware configuration the hierarchy models.
func (h Hierarchy) Config() hw.Config { return h.cfg }

// EffectiveBandwidthGBs returns the DRAM bandwidth usable by the given
// access pattern.
func (h Hierarchy) EffectiveBandwidthGBs(p kernel.AccessPattern) float64 {
	return h.cfg.PeakBandwidthGBs() * PatternEfficiency(p)
}

// DRAMLatencyNS returns the latency of one DRAM access at the given
// bandwidth utilisation (0..1). Queueing delay grows hyperbolically as
// the channel saturates, capped at MaxQueueFactor times the unloaded
// device latency.
func (h Hierarchy) DRAMLatencyNS(utilization float64) float64 {
	cyc := h.cfg.CoreCycleNS()
	unloaded := DRAMCoreCycles*cyc + DRAMDeviceNS
	u := clamp01(utilization)
	// M/D/1-flavoured stretch: delay ~ u/(2(1-u)) service times.
	queue := DRAMDeviceNS * u / (2 * max(1-u, 1.0/MaxQueueFactor))
	if queue > DRAMDeviceNS*MaxQueueFactor {
		queue = DRAMDeviceNS * MaxQueueFactor
	}
	return unloaded + queue
}

// L1LatencyNS returns vector-L1 hit latency in nanoseconds.
func (h Hierarchy) L1LatencyNS() float64 {
	return L1HitCycles * h.cfg.CoreCycleNS()
}

// L2LatencyNS returns L2 hit latency in nanoseconds.
func (h Hierarchy) L2LatencyNS() float64 {
	return L2HitCycles * h.cfg.CoreCycleNS()
}

// AvgAccessLatencyNS returns the mean latency of one vector memory
// access given the hit-rate split and DRAM utilisation.
func (h Hierarchy) AvgAccessLatencyNS(hr HitRates, utilization float64) float64 {
	m := h.AccessModel(hr)
	return m.LatencyNS(utilization)
}

// AccessModel is the average-access-latency curve of one (config,
// hit-rate) pair with every utilisation-independent term folded in.
// The round engine's fixed-point solver evaluates the curve dozens of
// times per batch; precomputing the hit/miss blend keeps those
// evaluations down to the queueing term. LatencyNS preserves
// AvgAccessLatencyNS's expression tree exactly, so the two agree bit
// for bit.
type AccessModel struct {
	hitNS        float64 // hr.L1 * L1 latency
	missL1       float64 // 1 - hr.L1
	l2NS         float64 // hr.L2 * L2 latency
	missL2       float64 // 1 - hr.L2
	dramUnloaded float64 // unloaded DRAM latency (core + device)
}

// AccessModel folds the hierarchy's latencies and the hit-rate split
// into a reusable latency curve.
func (h Hierarchy) AccessModel(hr HitRates) AccessModel {
	return AccessModel{
		hitNS:        hr.L1 * h.L1LatencyNS(),
		missL1:       1 - hr.L1,
		l2NS:         hr.L2 * h.L2LatencyNS(),
		missL2:       1 - hr.L2,
		dramUnloaded: DRAMCoreCycles*h.cfg.CoreCycleNS() + DRAMDeviceNS,
	}
}

// UnloadedNS returns LatencyNS(0) without the queueing arithmetic:
// at zero utilisation the queue term is exactly zero, so the two
// agree bit for bit.
func (m *AccessModel) UnloadedNS() float64 {
	return m.hitNS + m.missL1*(m.l2NS+m.missL2*m.dramUnloaded)
}

// LatencyNS returns the mean access latency at the given DRAM
// bandwidth utilisation (0..1).
func (m *AccessModel) LatencyNS(utilization float64) float64 {
	u := clamp01(utilization)
	queue := DRAMDeviceNS * u / (2 * max(1-u, 1.0/MaxQueueFactor))
	if queue > DRAMDeviceNS*MaxQueueFactor {
		queue = DRAMDeviceNS * MaxQueueFactor
	}
	dram := m.dramUnloaded + queue
	return m.hitNS + m.missL1*(m.l2NS+m.missL2*dram)
}
