// Package trace generates synthetic global-memory address streams from
// a kernel's behavioural description and replays them through the exact
// cache simulator in internal/memory. It backs the high-fidelity mode
// of the simulator and the ablation experiments that validate the
// analytic hit-rate model against trace-driven simulation.
package trace

import (
	"fmt"
	"math/rand"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/memory"
)

// sharedBase is the address where the cross-workgroup shared region
// lives; private regions are laid out above it per workgroup.
const sharedBase uint64 = 0

// privateBase returns the start of workgroup wg's private region given
// the kernel's footprint split.
func privateBase(k *kernel.Kernel, wg int) uint64 {
	shared := uint64(float64(k.Mem.WorkingSetPerWG) * k.Mem.SharedFraction)
	private := uint64(k.Mem.WorkingSetPerWG) - shared
	// Leave the shared region at the bottom, round regions to lines.
	return roundUp(shared, hw.L2LineBytes) + uint64(wg)*roundUp(private, hw.L2LineBytes)
}

func roundUp(v uint64, to int) uint64 {
	t := uint64(to)
	return (v + t - 1) / t * t
}

// Generator produces the line-granularity address stream of one
// workgroup. Streams are deterministic for a given kernel and seed.
type Generator struct {
	k   *kernel.Kernel
	rng *rand.Rand
}

// NewGenerator builds a generator for the kernel with a deterministic
// seed.
func NewGenerator(k *kernel.Kernel, seed int64) *Generator {
	return &Generator{k: k, rng: rand.New(rand.NewSource(seed))}
}

// WorkgroupStream returns the sequence of byte addresses (one per
// wavefront-level transaction) workgroup wg issues over its lifetime.
// The stream interleaves the kernel's temporal-reuse passes so that
// reused data is re-touched after a realistic reuse distance rather
// than immediately.
func (g *Generator) WorkgroupStream(wg int) []uint64 {
	k := g.k
	accesses := k.MemAccessesPerWave() * k.WavesPerWG()
	if accesses == 0 || k.Mem.WorkingSetPerWG == 0 {
		return nil
	}

	shared := uint64(float64(k.Mem.WorkingSetPerWG) * k.Mem.SharedFraction)
	private := uint64(k.Mem.WorkingSetPerWG) - shared
	pBase := privateBase(k, wg)

	passes := 1 + int(k.Mem.ReuseFactor+0.5)
	perPass := accesses / passes
	if perPass == 0 {
		perPass = 1
	}

	out := make([]uint64, 0, accesses)
	for pass := 0; pass < passes && len(out) < accesses; pass++ {
		for i := 0; i < perPass && len(out) < accesses; i++ {
			// Pick the region: shared accesses proportional to the
			// footprint split.
			var base, size uint64
			if shared > 0 && g.rng.Float64() < k.Mem.SharedFraction {
				base, size = sharedBase, shared
			} else {
				base, size = pBase, private
				if size == 0 {
					base, size = sharedBase, shared
				}
			}
			out = append(out, base+g.offset(i, size))
		}
	}
	return out
}

// offset places the i-th access of a pass inside a region of the given
// size according to the kernel's access pattern.
func (g *Generator) offset(i int, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	line := uint64(hw.L2LineBytes)
	lines := size / line
	if lines == 0 {
		lines = 1
	}
	switch g.k.Mem.Pattern {
	case kernel.Streaming:
		return (uint64(i) % lines) * line
	case kernel.Tiled:
		// Repeated sweeps over a small tile before moving on.
		const tileLines = 16
		tile := uint64(i / (tileLines * 4)) // 4 sweeps per tile
		return ((tile*tileLines + uint64(i)%tileLines) % lines) * line
	case kernel.Strided:
		const strideLines = 8
		return ((uint64(i) * strideLines) % lines) * line
	case kernel.Gather, kernel.PointerChase:
		return uint64(g.rng.Int63n(int64(lines))) * line
	default:
		return (uint64(i) % lines) * line
	}
}

// Result carries measured hit rates from a trace-driven replay.
type Result struct {
	// L1 is the mean per-CU L1 hit rate.
	L1 float64
	// L2 is the hit rate of L1 misses in the shared L2.
	L2 float64
	// Accesses is the total transactions replayed.
	Accesses uint64
}

// Replay simulates residentWGsPerCU workgroups on each of cus CUs: one
// private L1 per CU and one shared L2. All resident workgroup streams —
// across workgroups on a CU and across CUs — are round-robin
// interleaved, the way concurrent execution interleaves their memory
// phases at the shared L2; this concurrency is what lets an aggregate
// working set thrash the L2 as CUs are added.
func Replay(k *kernel.Kernel, residentWGsPerCU, cus int, seed int64) (Result, error) {
	if residentWGsPerCU < 1 || cus < 1 {
		return Result{}, fmt.Errorf("trace: invalid replay shape (%d WGs/CU, %d CUs)",
			residentWGsPerCU, cus)
	}
	l2, err := memoryL2()
	if err != nil {
		return Result{}, err
	}
	gen := NewGenerator(k, seed)

	type resident struct {
		l1     *memory.Cache
		stream []uint64
	}
	residents := make([]resident, 0, cus*residentWGsPerCU)
	wg := 0
	for cu := 0; cu < cus; cu++ {
		l1, err := memoryL1()
		if err != nil {
			return Result{}, err
		}
		for i := 0; i < residentWGsPerCU; i++ {
			residents = append(residents, resident{l1: l1, stream: gen.WorkgroupStream(wg)})
			wg++
		}
	}

	var l1Hits, l1Total, l2Hits, l2Total uint64
	for remaining := true; remaining; {
		remaining = false
		for i := range residents {
			r := &residents[i]
			if len(r.stream) == 0 {
				continue
			}
			remaining = true
			addr := r.stream[0]
			r.stream = r.stream[1:]
			l1Total++
			if r.l1.Access(addr) {
				l1Hits++
				continue
			}
			l2Total++
			if l2.Access(addr) {
				l2Hits++
			}
		}
	}

	r := Result{Accesses: l1Total}
	if l1Total > 0 {
		r.L1 = float64(l1Hits) / float64(l1Total)
	}
	if l2Total > 0 {
		r.L2 = float64(l2Hits) / float64(l2Total)
	}
	return r, nil
}
