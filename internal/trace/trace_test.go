package trace

import (
	"testing"

	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/memory"
)

func traceKernel(ws int64, shared, reuse float64, p kernel.AccessPattern) *kernel.Kernel {
	return kernel.New("s", "p", "k").
		Access(p, 256, 64, 4).
		Locality(ws, shared, reuse).
		MustBuild()
}

func TestWorkgroupStreamDeterministic(t *testing.T) {
	k := traceKernel(64*1024, 0.3, 2, kernel.Gather)
	a := NewGenerator(k, 42).WorkgroupStream(3)
	b := NewGenerator(k, 42).WorkgroupStream(3)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("stream lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestWorkgroupStreamLength(t *testing.T) {
	k := traceKernel(64*1024, 0, 0, kernel.Streaming)
	got := NewGenerator(k, 1).WorkgroupStream(0)
	want := k.MemAccessesPerWave() * k.WavesPerWG()
	if len(got) != want {
		t.Fatalf("stream length = %d, want %d", len(got), want)
	}
}

func TestWorkgroupStreamEmptyForPureCompute(t *testing.T) {
	k := kernel.New("s", "p", "k").Access(kernel.Streaming, 0, 0, 0).MLP(0).MustBuild()
	if got := NewGenerator(k, 1).WorkgroupStream(0); got != nil {
		t.Fatalf("pure compute stream = %d accesses, want none", len(got))
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	k := traceKernel(32*1024, 0, 0, kernel.Streaming)
	g := NewGenerator(k, 1)
	s0 := g.WorkgroupStream(0)
	s1 := g.WorkgroupStream(1)
	max0 := uint64(0)
	for _, a := range s0 {
		if a > max0 {
			max0 = a
		}
	}
	for _, a := range s1 {
		if a <= max0 {
			t.Fatalf("workgroup 1 address %d overlaps workgroup 0 region (max %d)", a, max0)
		}
	}
}

func TestSharedRegionOverlaps(t *testing.T) {
	k := traceKernel(32*1024, 1, 0, kernel.Streaming)
	g := NewGenerator(k, 1)
	s0 := NewGenerator(k, 1).WorkgroupStream(0)
	s1 := g.WorkgroupStream(1)
	seen := map[uint64]bool{}
	for _, a := range s0 {
		seen[a] = true
	}
	overlap := 0
	for _, a := range s1 {
		if seen[a] {
			overlap++
		}
	}
	if overlap == 0 {
		t.Fatal("fully shared kernels produced disjoint streams")
	}
}

func TestReplayStreamingReuseHits(t *testing.T) {
	// A small, heavily reused working set must show strong L1 hits.
	k := traceKernel(8*1024, 0, 4, kernel.Streaming)
	r, err := Replay(k, 1, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.L1 < 0.5 {
		t.Fatalf("reused 8 KiB set L1 hit rate = %.3f, want > 0.5", r.L1)
	}
}

func TestReplayThrashingLowHits(t *testing.T) {
	// A 4 MiB gather working set per workgroup on many CUs must
	// overwhelm both levels.
	k := traceKernel(4<<20, 0, 1, kernel.Gather)
	r, err := Replay(k, 2, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.L1 > 0.2 {
		t.Fatalf("thrashing L1 hit rate = %.3f, want < 0.2", r.L1)
	}
	if r.L2 > 0.3 {
		t.Fatalf("thrashing L2 hit rate = %.3f, want < 0.3", r.L2)
	}
}

func TestReplayL2FallsWithCUs(t *testing.T) {
	// Trace-level confirmation of the CU-intolerance mechanism the
	// analytic model encodes: per-pass footprints of 128 KiB per
	// workgroup fit the 1 MiB L2 at 2 CUs (passes 2..4 hit) but
	// thrash it at 16 CUs.
	k := kernel.New("s", "p", "k").
		Access(kernel.Streaming, 2048, 0, 4).
		Locality(128*1024, 0, 3).
		MustBuild()
	lo, err := Replay(k, 1, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Replay(k, 1, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if hi.L2 >= lo.L2 {
		t.Fatalf("L2 hit rate did not fall with CUs: 2 CUs %.3f vs 16 CUs %.3f", lo.L2, hi.L2)
	}
}

func TestReplayValidatesShape(t *testing.T) {
	k := traceKernel(1024, 0, 0, kernel.Streaming)
	if _, err := Replay(k, 0, 1, 1); err == nil {
		t.Error("Replay(0 WGs) succeeded")
	}
	if _, err := Replay(k, 1, 0, 1); err == nil {
		t.Error("Replay(0 CUs) succeeded")
	}
}

func TestAnalyticModelTracksTraceDirection(t *testing.T) {
	// The analytic estimate need not match the trace numerically, but
	// it must agree on direction: when the trace says configuration A
	// has a clearly better L2 hit rate than B, the model must too.
	kFits := traceKernel(16*1024, 0, 3, kernel.Streaming)
	kThrash := traceKernel(2<<20, 0, 3, kernel.Gather)

	tFits, err := Replay(kFits, 1, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	tThrash, err := Replay(kThrash, 1, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	aFits := memory.EstimateHitRates(kFits, 1, 4)
	aThrash := memory.EstimateHitRates(kThrash, 1, 4)

	if !(tFits.L1 > tThrash.L1) {
		t.Skipf("trace did not separate the cases (%.3f vs %.3f)", tFits.L1, tThrash.L1)
	}
	if !(aFits.L1 > aThrash.L1) {
		t.Fatalf("analytic model disagrees with trace direction: fits %.3f vs thrash %.3f",
			aFits.L1, aThrash.L1)
	}
}

func TestStreamAddressesLineAligned(t *testing.T) {
	for _, p := range []kernel.AccessPattern{
		kernel.Streaming, kernel.Tiled, kernel.Strided, kernel.Gather, kernel.PointerChase,
	} {
		k := traceKernel(64*1024, 0.2, 1, p)
		for _, a := range NewGenerator(k, 3).WorkgroupStream(0) {
			if a%hw.L2LineBytes != 0 {
				t.Fatalf("pattern %v produced unaligned address %d", p, a)
			}
		}
	}
}
