package trace

import (
	"gpuscale/internal/hw"
	"gpuscale/internal/memory"
)

// memoryL1 builds a cache with the modelled per-CU L1 geometry.
func memoryL1() (*memory.Cache, error) {
	return memory.NewCache(hw.L1BytesPerCU, hw.L1LineBytes, hw.L1Ways)
}

// memoryL2 builds a cache with the modelled shared L2 geometry.
func memoryL2() (*memory.Cache, error) {
	return memory.NewCache(hw.L2Bytes, hw.L2LineBytes, hw.L2Ways)
}
