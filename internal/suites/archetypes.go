// Package suites provides the synthetic benchmark corpus that stands
// in for the paper's 97 OpenCL programs and 267 kernels. Real suites
// (and their inputs) are not redistributable or even runnable here, so
// the corpus is built from twelve behavioural archetypes whose
// parameters are drawn deterministically per suite; the per-suite
// archetype mixes mirror the character of the suite families the paper
// measured (vendor samples with tiny grids, scientific suites with
// stencils and reductions, graph-analytics suites with irregular
// access, proxy apps with large balanced grids).
package suites

import (
	"math/rand"

	"gpuscale/internal/kernel"
)

// Archetype names one of the twelve behavioural families a corpus
// kernel can belong to.
type Archetype int

// The twelve archetypes. Their intended dominant scaling class is
// noted; the taxonomy pipeline must *discover* these classes from
// simulated timings, never from these labels.
const (
	// DenseCompute is a tiled, high-intensity kernel (GEMM-like):
	// compute-coupled scaling.
	DenseCompute Archetype = iota
	// StreamBW is a copy/saxpy-like streaming kernel:
	// bandwidth-coupled scaling.
	StreamBW
	// Stencil is a structured-grid kernel with neighbour sharing.
	Stencil
	// Reduction is a wide streaming read with few writes.
	Reduction
	// GraphGather is an irregular, divergent gather kernel.
	GraphGather
	// PointerChase is a serially dependent lookup kernel:
	// latency-bound plateaus.
	PointerChase
	// LDSHeavy is a sort/FFT-like kernel dominated by LDS traffic and
	// barriers.
	LDSHeavy
	// CacheSensitive reuses a working set that overflows the shared L2
	// as CUs are added: CU-intolerant scaling.
	CacheSensitive
	// SmallGrid launches too few workgroups for a large GPU:
	// parallelism-limited scaling.
	SmallGrid
	// TinyLaunch is dominated by fixed launch overhead.
	TinyLaunch
	// Divergent is compute-heavy with poor SIMD efficiency.
	Divergent
	// Balanced sits near the machine balance point.
	Balanced
)

var archetypeNames = [...]string{
	"dense-compute", "stream-bw", "stencil", "reduction", "graph-gather",
	"pointer-chase", "lds-heavy", "cache-sensitive", "small-grid",
	"tiny-launch", "divergent", "balanced",
}

// String returns the archetype's kebab-case name.
func (a Archetype) String() string {
	if a < 0 || int(a) >= len(archetypeNames) {
		return "unknown"
	}
	return archetypeNames[a]
}

// NumArchetypes is the count of defined archetypes.
const NumArchetypes = int(Balanced) + 1

// sizeClass bounds the workgroup counts a suite launches.
type sizeClass struct {
	minWGs, maxWGs int
}

func (s sizeClass) pick(rng *rand.Rand) int {
	if s.maxWGs <= s.minWGs {
		return s.minWGs
	}
	return s.minWGs + rng.Intn(s.maxWGs-s.minWGs+1)
}

// jitter returns a uniform value in [lo, hi].
func jitter(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

func jitterInt(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// buildArchetype instantiates one kernel of the archetype with
// deterministic parameter jitter from rng. The size class bounds the
// grid except for archetypes whose identity *is* their grid size.
func buildArchetype(a Archetype, suite, program, name string, size sizeClass, rng *rand.Rand) *kernel.Kernel {
	b := kernel.New(suite, program, name)
	switch a {
	case DenseCompute:
		b.Geometry(size.pick(rng), 256).
			Compute(jitterInt(rng, 8000, 30000), 500).
			Resources(jitterInt(rng, 48, 84), 64, 16*1024).
			LDSOps(jitterInt(rng, 1000, 3000), jitterInt(rng, 4, 10)).
			Access(kernel.Tiled, jitterInt(rng, 48, 96), jitterInt(rng, 8, 24), 4).
			Locality(32*1024, 0.2, jitter(rng, 4, 8)).
			MLP(6)
	case StreamBW:
		b.Geometry(size.pick(rng), 256).
			Compute(jitterInt(rng, 300, 800), 50).
			Access(kernel.Streaming, jitterInt(rng, 192, 384), jitterInt(rng, 48, 96), 4+4*rng.Intn(2)).
			Locality(int64(jitterInt(rng, 128, 512))*1024, 0, 0).
			MLP(jitter(rng, 10, 12))
	case Stencil:
		b.Geometry(size.pick(rng), 256).
			Compute(jitterInt(rng, 1500, 4000), 200).
			Access(kernel.Streaming, jitterInt(rng, 96, 160), jitterInt(rng, 24, 48), 4).
			Locality(96*1024, jitter(rng, 0.2, 0.4), jitter(rng, 1, 2)).
			MLP(8)
	case Reduction:
		b.Geometry(size.pick(rng), 256).
			Compute(jitterInt(rng, 400, 900), 100).
			LDSOps(jitterInt(rng, 100, 300), jitterInt(rng, 4, 8)).
			Access(kernel.Streaming, jitterInt(rng, 128, 256), 2, 4+4*rng.Intn(2)).
			Locality(int64(jitterInt(rng, 128, 384))*1024, 0, 0).
			MLP(10)
	case GraphGather:
		b.Geometry(size.pick(rng), 256).
			Compute(jitterInt(rng, 1200, 3000), 400).
			Access(kernel.Gather, jitterInt(rng, 64, 160), jitterInt(rng, 16, 32), 4).
			Coalescing(jitter(rng, 0.15, 0.4)).
			Divergence(jitter(rng, 0.4, 0.7)).
			Locality(int64(jitterInt(rng, 1, 8))<<20, 0.3, jitter(rng, 0.8, 1.5)).
			MLP(4)
	case PointerChase:
		b.Geometry(size.pick(rng), 64).
			Resources(32, 48, 64*1024). // one wave per CU: minimal hiding
			Compute(jitterInt(rng, 800, 1500), 100).
			Access(kernel.PointerChase, jitterInt(rng, 800, 2500), 0, 1).
			Coalescing(1).
			Locality(int64(jitterInt(rng, 8, 32))<<20, 0, 0).
			MLP(1).
			DepChain(jitter(rng, 0.9, 1))
	case LDSHeavy:
		b.Geometry(size.pick(rng), 256).
			Compute(jitterInt(rng, 2500, 5000), 800).
			Resources(48, 64, 32*1024).
			LDSOps(jitterInt(rng, 4000, 8000), jitterInt(rng, 12, 24)).
			Access(kernel.Strided, jitterInt(rng, 32, 64), jitterInt(rng, 16, 32), 4).
			Locality(48*1024, 0, 1).
			MLP(6)
	case CacheSensitive:
		b.Geometry(size.pick(rng), 256).
			Compute(jitterInt(rng, 2000, 4000), 100).
			Resources(32, 48, 32*1024). // LDS caps residency at 2 WGs/CU
			Access(kernel.Tiled, jitterInt(rng, 256, 512), jitterInt(rng, 64, 128), 4).
			Locality(int64(jitterInt(rng, 128, 256))*1024, 0, jitter(rng, 3, 6)).
			MLP(8)
	case SmallGrid:
		b.Geometry(jitterInt(rng, 6, 22), 256).
			Compute(jitterInt(rng, 30000, 80000), 1000).
			Access(kernel.Streaming, jitterInt(rng, 16, 48), jitterInt(rng, 4, 12), 4).
			Locality(32*1024, 0, 1).
			MLP(8)
	case TinyLaunch:
		b.Geometry(jitterInt(rng, 1, 8), 64).
			Compute(jitterInt(rng, 100, 400), 20).
			Access(kernel.Streaming, jitterInt(rng, 2, 8), 1, 4).
			Locality(8*1024, 0, 0).
			Launch(jitter(rng, 10000, 30000), jitterInt(rng, 50, 200))
	case Divergent:
		b.Geometry(size.pick(rng), 256).
			Compute(jitterInt(rng, 10000, 20000), 2000).
			Divergence(jitter(rng, 0.15, 0.4)).
			Access(kernel.Strided, jitterInt(rng, 32, 96), jitterInt(rng, 8, 24), 4).
			Locality(64*1024, 0, 1).
			MLP(5)
	case Balanced:
		b.Geometry(size.pick(rng), 256).
			Compute(jitterInt(rng, 4000, 8000), 400).
			Access(kernel.Streaming, jitterInt(rng, 96, 192), jitterInt(rng, 24, 48), 4).
			Locality(64*1024, 0.1, 1).
			MLP(8)
	}
	return b.MustBuild()
}
