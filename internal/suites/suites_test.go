package suites

import (
	"testing"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
)

func TestCorpusMatchesAbstractCounts(t *testing.T) {
	c := Corpus()
	if len(c) != 8 {
		t.Errorf("suites = %d, want 8", len(c))
	}
	programs, kernels := Totals(c)
	if programs != 97 {
		t.Errorf("programs = %d, want 97 (the paper's count)", programs)
	}
	if kernels != 267 {
		t.Errorf("kernels = %d, want 267 (the paper's count)", kernels)
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := AllKernels(Corpus())
	b := AllKernels(Corpus())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("kernel %d differs between constructions: %s", i, a[i].Name)
		}
	}
}

func TestCorpusKernelsAllValid(t *testing.T) {
	for _, k := range AllKernels(Corpus()) {
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

func TestCorpusKernelsAllRunnable(t *testing.T) {
	// Every kernel must simulate successfully on both grid corners.
	for _, cfg := range []hw.Config{hw.Minimum(), hw.Reference()} {
		for _, k := range AllKernels(Corpus()) {
			if _, err := gcn.Simulate(k, cfg); err != nil {
				t.Errorf("%s @ %v: %v", k.Name, cfg, err)
			}
		}
	}
}

func TestCorpusNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range AllKernels(Corpus()) {
		if seen[k.Name] {
			t.Errorf("duplicate kernel name %q", k.Name)
		}
		seen[k.Name] = true
	}
}

func TestCorpusCoversAllArchetypes(t *testing.T) {
	counts := map[Archetype]int{}
	for _, e := range AllEntries(Corpus()) {
		counts[e.Archetype]++
	}
	for a := Archetype(0); int(a) < NumArchetypes; a++ {
		if counts[a] == 0 {
			t.Errorf("archetype %v has no corpus kernels", a)
		}
	}
}

func TestCorpusSuiteCharacter(t *testing.T) {
	c := Corpus()
	// SDK samples must skew small, proxy apps large: compare median
	// workgroup counts.
	med := func(name string) int {
		s := FindSuite(c, name)
		if s == nil {
			t.Fatalf("suite %q missing", name)
		}
		var wgs []int
		for _, p := range s.Programs {
			for _, e := range p.Kernels {
				wgs = append(wgs, e.Kernel.Workgroups)
			}
		}
		for i := 1; i < len(wgs); i++ { // insertion sort, small n
			for j := i; j > 0 && wgs[j] < wgs[j-1]; j-- {
				wgs[j], wgs[j-1] = wgs[j-1], wgs[j]
			}
		}
		return wgs[len(wgs)/2]
	}
	sdk, proxy := med("sdk-samples"), med("proxyapps")
	if sdk >= 128 {
		t.Errorf("sdk-samples median workgroups = %d, want < 128 (legacy inputs)", sdk)
	}
	if proxy < 2048 {
		t.Errorf("proxyapps median workgroups = %d, want >= 2048 (modern inputs)", proxy)
	}
}

func TestFindSuite(t *testing.T) {
	c := Corpus()
	if FindSuite(c, "graphana") == nil {
		t.Error("graphana not found")
	}
	if FindSuite(c, "nope") != nil {
		t.Error("phantom suite found")
	}
}

func TestArchetypeString(t *testing.T) {
	if DenseCompute.String() != "dense-compute" {
		t.Errorf("DenseCompute = %q", DenseCompute.String())
	}
	if Archetype(99).String() != "unknown" {
		t.Errorf("invalid archetype = %q", Archetype(99).String())
	}
}

func TestEntryArchetypeInName(t *testing.T) {
	// Kernel names embed their archetype for report readability.
	for _, e := range AllEntries(Corpus())[:20] {
		want := e.Archetype.String()
		if got := e.Kernel.Name; !contains(got, want) {
			t.Errorf("kernel %q does not mention archetype %q", got, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
