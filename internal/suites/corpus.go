package suites

import (
	"fmt"
	"math/rand"

	"gpuscale/internal/kernel"
)

// Program is one corpus program: a host application launching one or
// more kernels.
type Program struct {
	// Name identifies the program within its suite.
	Name string
	// Suite is the owning suite's name.
	Suite string
	// Kernels are the program's kernels, with archetype provenance.
	Kernels []Entry
}

// Entry pairs a kernel with the archetype that generated it. The
// archetype is provenance for validation experiments only — the
// taxonomy must never read it as an input.
type Entry struct {
	Kernel    *kernel.Kernel
	Archetype Archetype
}

// Suite is a named family of programs.
type Suite struct {
	// Name is the suite's short identifier.
	Name string
	// Description says which real-world suite family it stands in for.
	Description string
	// Programs are the suite's programs.
	Programs []Program
}

// KernelCount returns the total kernels in the suite.
func (s *Suite) KernelCount() int {
	n := 0
	for _, p := range s.Programs {
		n += len(p.Kernels)
	}
	return n
}

// suiteSpec drives deterministic corpus construction.
type suiteSpec struct {
	name        string
	description string
	// kernelCounts has one entry per program: its kernel count.
	kernelCounts []int
	size         sizeClass
	// mix maps archetypes to selection weights.
	mix []weighted
}

type weighted struct {
	a Archetype
	w float64
}

// repeatPattern tiles pattern until n entries are produced.
func repeatPattern(pattern []int, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = pattern[i%len(pattern)]
	}
	return out
}

// specs reconstructs the paper's corpus shape: 8 suite families,
// 97 programs, 267 kernels. The per-suite kernel-count patterns are
// chosen so the totals match the abstract exactly; a test pins them.
func specs() []suiteSpec {
	return []suiteSpec{
		{
			name:         "sdk-samples",
			description:  "vendor SDK sample codes: tiny grids and launch-dominated demos",
			kernelCounts: repeatPattern([]int{1, 2}, 18), // 27 kernels
			size:         sizeClass{8, 96},
			mix: []weighted{
				{SmallGrid, 0.30}, {TinyLaunch, 0.20}, {StreamBW, 0.20},
				{DenseCompute, 0.10}, {Reduction, 0.20},
			},
		},
		{
			name:         "scicomp",
			description:  "scientific-computing suite: stencils, reductions, solvers",
			kernelCounts: repeatPattern([]int{2, 3, 4}, 18), // 54 kernels
			size:         sizeClass{64, 768},
			mix: []weighted{
				{Stencil, 0.25}, {GraphGather, 0.15}, {Reduction, 0.15},
				{DenseCompute, 0.15}, {LDSHeavy, 0.10}, {Balanced, 0.10},
				{SmallGrid, 0.10},
			},
		},
		{
			name:         "throughput",
			description:  "throughput-computing suite: dense linear algebra and media",
			kernelCounts: repeatPattern([]int{2, 3}, 11), // 27 kernels
			size:         sizeClass{128, 2048},
			mix: []weighted{
				{DenseCompute, 0.30}, {StreamBW, 0.20}, {Stencil, 0.20},
				{Balanced, 0.20}, {LDSHeavy, 0.10},
			},
		},
		{
			name:         "microbench",
			description:  "microbenchmark suite: bandwidth, reduction, GEMM, FFT probes",
			kernelCounts: repeatPattern([]int{2, 4, 3, 3}, 12), // 36 kernels
			size:         sizeClass{64, 1024},
			mix: []weighted{
				{StreamBW, 0.30}, {Reduction, 0.20}, {DenseCompute, 0.20},
				{LDSHeavy, 0.15}, {TinyLaunch, 0.15},
			},
		},
		{
			name:         "graphana",
			description:  "graph-analytics suite: traversal and label propagation",
			kernelCounts: []int{3, 5, 4, 4, 4, 4}, // 24 kernels
			size:         sizeClass{512, 4096},
			mix: []weighted{
				{GraphGather, 0.50}, {PointerChase, 0.20}, {Divergent, 0.30},
			},
		},
		{
			name:         "dwarfs",
			description:  "computational-dwarf kernels: one per Berkeley dwarf family",
			kernelCounts: []int{3, 2, 2, 3, 2, 2, 3, 2, 2, 2, 2}, // 25 kernels
			size:         sizeClass{32, 512},
			mix: []weighted{
				{Balanced, 0.20}, {Stencil, 0.20}, {GraphGather, 0.15},
				{CacheSensitive, 0.15}, {SmallGrid, 0.15}, {Reduction, 0.15},
			},
		},
		{
			name:         "irregular",
			description:  "irregular-workload suite: worklists and pointer structures",
			kernelCounts: repeatPattern([]int{3}, 9), // 27 kernels
			size:         sizeClass{256, 2048},
			mix: []weighted{
				{PointerChase, 0.35}, {GraphGather, 0.35}, {Divergent, 0.20},
				{CacheSensitive, 0.10},
			},
		},
		{
			name:         "proxyapps",
			description:  "exascale proxy applications: large, modern problem sizes",
			kernelCounts: append(repeatPattern([]int{4}, 11), 3), // 47 kernels
			size:         sizeClass{2048, 16384},
			mix: []weighted{
				{DenseCompute, 0.30}, {Stencil, 0.25}, {Balanced, 0.20},
				{StreamBW, 0.15}, {CacheSensitive, 0.10},
			},
		},
	}
}

// pickArchetype draws an archetype from the suite mix.
func pickArchetype(mix []weighted, rng *rand.Rand) Archetype {
	total := 0.0
	for _, m := range mix {
		total += m.w
	}
	x := rng.Float64() * total
	for _, m := range mix {
		x -= m.w
		if x < 0 {
			return m.a
		}
	}
	return mix[len(mix)-1].a
}

// Corpus deterministically constructs the full 8-suite, 97-program,
// 267-kernel corpus. Construction is cheap; callers needing the
// corpus repeatedly may cache the result.
func Corpus() []Suite {
	out := make([]Suite, 0, 8)
	for si, spec := range specs() {
		s := Suite{Name: spec.name, Description: spec.description}
		for pi, kc := range spec.kernelCounts {
			progName := fmt.Sprintf("%s-p%02d", spec.name, pi+1)
			// One deterministic stream per program keeps programs
			// stable if other suites change.
			rng := rand.New(rand.NewSource(int64(si)*1000 + int64(pi) + 1))
			prog := Program{Name: progName, Suite: spec.name}
			for ki := 0; ki < kc; ki++ {
				a := pickArchetype(spec.mix, rng)
				name := fmt.Sprintf("k%d_%s", ki+1, a)
				prog.Kernels = append(prog.Kernels, Entry{
					Kernel:    buildArchetype(a, spec.name, progName, name, spec.size, rng),
					Archetype: a,
				})
			}
			s.Programs = append(s.Programs, prog)
		}
		out = append(out, s)
	}
	return out
}

// AllEntries flattens the corpus into one kernel list in deterministic
// order.
func AllEntries(corpus []Suite) []Entry {
	var out []Entry
	for _, s := range corpus {
		for _, p := range s.Programs {
			out = append(out, p.Kernels...)
		}
	}
	return out
}

// AllKernels returns just the kernels of AllEntries.
func AllKernels(corpus []Suite) []*kernel.Kernel {
	entries := AllEntries(corpus)
	out := make([]*kernel.Kernel, len(entries))
	for i, e := range entries {
		out[i] = e.Kernel
	}
	return out
}

// Totals returns the program and kernel counts of a corpus.
func Totals(corpus []Suite) (programs, kernels int) {
	for _, s := range corpus {
		programs += len(s.Programs)
		kernels += s.KernelCount()
	}
	return programs, kernels
}

// FindSuite returns the named suite, or nil.
func FindSuite(corpus []Suite, name string) *Suite {
	for i := range corpus {
		if corpus[i].Name == name {
			return &corpus[i]
		}
	}
	return nil
}
