package power

import (
	"math"
	"testing"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []func(*Model){
		func(m *Model) { m.DynPerCUW = 0 },
		func(m *Model) { m.BaseW = -1 },
		func(m *Model) { m.VMax = m.VMin - 0.1 },
		func(m *Model) { m.FMax = m.FMin },
		func(m *Model) { m.VMin = 0 },
	}
	for i, mutate := range cases {
		m := DefaultModel()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestVoltageCurve(t *testing.T) {
	m := DefaultModel()
	if got := m.Voltage(200); got != m.VMin {
		t.Errorf("Voltage(200) = %g, want VMin %g", got, m.VMin)
	}
	if got := m.Voltage(1000); got != m.VMax {
		t.Errorf("Voltage(1000) = %g, want VMax %g", got, m.VMax)
	}
	if got := m.Voltage(600); got <= m.VMin || got >= m.VMax {
		t.Errorf("Voltage(600) = %g, want interior", got)
	}
	if got := m.Voltage(100); got != m.VMin {
		t.Errorf("Voltage below FMin = %g, want clamp", got)
	}
	if got := m.Voltage(1200); got != m.VMax {
		t.Errorf("Voltage above FMax = %g, want clamp", got)
	}
}

func TestPowerEnvelope(t *testing.T) {
	m := DefaultModel()
	full := m.PowerW(hw.Reference(), Activity{Compute: 1, Memory: 1})
	if full < 200 || full > 300 {
		t.Errorf("flagship full-load power = %.0f W, want Hawaii-class 200..300", full)
	}
	idle := m.PowerW(hw.Minimum(), Activity{})
	if idle < 20 || idle > 80 {
		t.Errorf("floor power = %.0f W, want 20..80", idle)
	}
	if full <= idle {
		t.Errorf("full %.0f W <= idle %.0f W", full, idle)
	}
}

func TestPowerMonotonicInKnobs(t *testing.T) {
	m := DefaultModel()
	a := Activity{Compute: 0.7, Memory: 0.5}
	base := m.PowerW(hw.Config{CUs: 20, CoreClockMHz: 600, MemClockMHz: 700}, a)
	moreCU := m.PowerW(hw.Config{CUs: 40, CoreClockMHz: 600, MemClockMHz: 700}, a)
	moreClk := m.PowerW(hw.Config{CUs: 20, CoreClockMHz: 1000, MemClockMHz: 700}, a)
	moreMem := m.PowerW(hw.Config{CUs: 20, CoreClockMHz: 600, MemClockMHz: 1250}, a)
	if moreCU <= base || moreClk <= base || moreMem <= base {
		t.Errorf("power not monotone: base %.1f cu %.1f clk %.1f mem %.1f",
			base, moreCU, moreClk, moreMem)
	}
}

func TestPowerSuperlinearInFrequency(t *testing.T) {
	// f*V^2 scaling: doubling frequency must more than double the
	// dynamic component.
	m := DefaultModel()
	m.BaseW, m.MemIdleW, m.MemClockW, m.MemDynW, m.LeakPerCUW = 0, 0, 0, 0, 0
	p500 := m.PowerW(hw.Config{CUs: 44, CoreClockMHz: 500, MemClockMHz: 700}, Activity{Compute: 1})
	p1000 := m.PowerW(hw.Config{CUs: 44, CoreClockMHz: 1000, MemClockMHz: 700}, Activity{Compute: 1})
	if p1000 <= 2*p500 {
		t.Errorf("dynamic power not superlinear: %.1f vs 2x%.1f", p1000, p500)
	}
}

func TestActivityOf(t *testing.T) {
	cfg := hw.Reference()
	r := gcn.Result{AchievedGFLOPS: cfg.PeakGFLOPS() / 2, AchievedGBs: cfg.PeakBandwidthGBs()}
	a := ActivityOf(r, cfg)
	if math.Abs(a.Compute-0.5) > 1e-9 {
		t.Errorf("Compute = %g, want 0.5", a.Compute)
	}
	if math.Abs(a.Memory-1) > 1e-9 {
		t.Errorf("Memory = %g, want 1", a.Memory)
	}
	floor := ActivityOf(gcn.Result{}, cfg)
	if floor.Compute != 0.1 {
		t.Errorf("idle compute activity = %g, want floor 0.1", floor.Compute)
	}
}

func streamK() *kernel.Kernel {
	return kernel.New("p", "p", "stream").
		Geometry(4096, 256).
		Compute(300, 50).
		Access(kernel.Streaming, 256, 64, 4).
		Locality(256*1024, 0, 0).
		MustBuild()
}

func computeK() *kernel.Kernel {
	return kernel.New("p", "p", "dense").
		Geometry(4096, 256).
		Compute(25000, 500).
		Access(kernel.Streaming, 8, 2, 4).
		MustBuild()
}

func TestMeasure(t *testing.T) {
	m := DefaultModel()
	r, rep, err := Measure(m, computeK(), hw.Reference())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PowerW <= 0 || rep.EnergyJ <= 0 || rep.EDP <= 0 || rep.PerfPerWatt <= 0 {
		t.Fatalf("degenerate report %+v", rep)
	}
	wantE := rep.PowerW * r.TimeNS * 1e-9
	if math.Abs(rep.EnergyJ-wantE) > 1e-12 {
		t.Errorf("EnergyJ = %g, want %g", rep.EnergyJ, wantE)
	}
	bad := DefaultModel()
	bad.DynPerCUW = -1
	if _, _, err := Measure(bad, computeK(), hw.Reference()); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestBoundDirectsPowerToTheRightDomain(t *testing.T) {
	m := DefaultModel()
	cfg := hw.Reference()
	_, _, err := Measure(m, streamK(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := gcn.Simulate(streamK(), cfg)
	rc, _ := gcn.Simulate(computeK(), cfg)
	as, ac := ActivityOf(rs, cfg), ActivityOf(rc, cfg)
	if as.Memory <= ac.Memory {
		t.Errorf("stream memory activity %.2f <= compute kernel's %.2f", as.Memory, ac.Memory)
	}
	if ac.Compute <= as.Compute {
		t.Errorf("dense compute activity %.2f <= stream kernel's %.2f", ac.Compute, as.Compute)
	}
}

func TestBestConfigObjectives(t *testing.T) {
	m := DefaultModel()
	space, err := hw.NewSpace([]int{4, 24, 44}, []float64{200, 600, 1000}, []float64{150, 700, 1250})
	if err != nil {
		t.Fatal(err)
	}
	// A bandwidth-bound kernel wastes energy at high core clocks: its
	// energy-optimal configuration must not use the top core clock.
	cfg, rep, err := BestConfig(m, streamK(), space, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CoreClockMHz == 1000 {
		t.Errorf("bw-bound min-energy config uses top core clock: %v", cfg)
	}
	if rep.EnergyJ <= 0 {
		t.Errorf("report %+v", rep)
	}
	// Objectives must actually optimise their metric across the grid.
	for _, obj := range []Optimum{MinEnergy, MinEDP, MaxPerfPerWatt} {
		best, bestRep, err := BestConfig(m, computeK(), space, obj)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range space.Configs() {
			_, rep, err := Measure(m, computeK(), c)
			if err != nil {
				t.Fatal(err)
			}
			switch obj {
			case MinEnergy:
				if rep.EnergyJ < bestRep.EnergyJ-1e-12 {
					t.Fatalf("%v: %v beats reported best %v", obj, c, best)
				}
			case MinEDP:
				if rep.EDP < bestRep.EDP-1e-15 {
					t.Fatalf("%v: %v beats reported best %v", obj, c, best)
				}
			case MaxPerfPerWatt:
				if rep.PerfPerWatt > bestRep.PerfPerWatt+1e-12 {
					t.Fatalf("%v: %v beats reported best %v", obj, c, best)
				}
			}
		}
	}
}

func TestBestConfigEmptySpace(t *testing.T) {
	if _, _, err := BestConfig(DefaultModel(), computeK(), hw.Space{}, MinEnergy); err == nil {
		t.Error("empty space accepted")
	}
}

func TestOptimumString(t *testing.T) {
	for _, o := range []Optimum{MinEnergy, MinEDP, MaxPerfPerWatt} {
		if o.String() == "" {
			t.Errorf("optimum %d unnamed", int(o))
		}
	}
	if Optimum(9).String() != "optimum(9)" {
		t.Errorf("invalid optimum name = %q", Optimum(9).String())
	}
}
