// Package power adds a DVFS power and energy model on top of the
// timing simulator — the extension the paper's research line points
// to (the same group's follow-on work uses scaling behaviour to drive
// GPU power management). The model is a standard CMOS decomposition:
//
//	P = P_base
//	  + CUs * (P_leak(V) + C_dyn * f * V^2 * activity)
//	  + P_memIdle + k_mem * f_mem + P_memDyn * f_mem/f_memMax * memActivity
//
// with voltage tied to core frequency by a linear DVFS curve. Activity
// factors come from the timing engine's achieved-vs-peak ratios, so a
// bandwidth-bound kernel heats the memory system, not the shader
// array. Absolute watts are Hawaii-plausible (≤ ~275 W TDP at the
// flagship point) but, as with timing, only *relative* behaviour is
// claimed.
package power

import (
	"fmt"

	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
)

// Model holds the power-model coefficients. Use DefaultModel unless an
// ablation perturbs them.
type Model struct {
	// BaseW is always-on board power (fans, VRM losses, display).
	BaseW float64
	// LeakPerCUW is per-CU leakage at nominal (maximum) voltage;
	// leakage scales linearly with voltage in this model.
	LeakPerCUW float64
	// DynPerCUW is per-CU dynamic power at maximum frequency and
	// voltage with activity 1.
	DynPerCUW float64
	// MemIdleW is DRAM+PHY power at the lowest memory clock, idle.
	MemIdleW float64
	// MemClockW is the additional clock-tree power per memory MHz.
	MemClockW float64
	// MemDynW is the extra power of a fully utilised memory system at
	// the top memory clock.
	MemDynW float64
	// VMin and VMax bound the DVFS voltage curve across the core
	// frequency range.
	VMin, VMax float64
	// FMin and FMax are the core clocks at which VMin/VMax apply.
	FMin, FMax float64
}

// DefaultModel returns Hawaii-plausible coefficients: ~272 W at the
// flagship configuration under full load, ~45 W floor.
func DefaultModel() Model {
	return Model{
		BaseW:      28,
		LeakPerCUW: 0.55,
		DynPerCUW:  3.6,
		MemIdleW:   8,
		MemClockW:  0.012,
		MemDynW:    34,
		VMin:       0.85,
		VMax:       1.20,
		FMin:       200,
		FMax:       1000,
	}
}

// Validate checks the coefficients are physical.
func (m Model) Validate() error {
	if m.BaseW < 0 || m.LeakPerCUW < 0 || m.DynPerCUW <= 0 ||
		m.MemIdleW < 0 || m.MemClockW < 0 || m.MemDynW < 0 {
		return fmt.Errorf("power: negative coefficient in %+v", m)
	}
	if m.VMin <= 0 || m.VMax < m.VMin {
		return fmt.Errorf("power: bad voltage range [%g, %g]", m.VMin, m.VMax)
	}
	if m.FMin <= 0 || m.FMax <= m.FMin {
		return fmt.Errorf("power: bad frequency range [%g, %g]", m.FMin, m.FMax)
	}
	return nil
}

// Voltage returns the DVFS voltage for a core clock, clamped to the
// curve's endpoints.
func (m Model) Voltage(coreMHz float64) float64 {
	switch {
	case coreMHz <= m.FMin:
		return m.VMin
	case coreMHz >= m.FMax:
		return m.VMax
	default:
		t := (coreMHz - m.FMin) / (m.FMax - m.FMin)
		return m.VMin + t*(m.VMax-m.VMin)
	}
}

// Activity captures how hard a kernel drives each domain, in [0,1].
type Activity struct {
	// Compute is shader-array activity (achieved/peak FLOPs, floored
	// so instruction issue without FLOPs still burns power).
	Compute float64
	// Memory is DRAM-system activity (achieved/peak bandwidth).
	Memory float64
}

// ActivityOf derives activity factors from a simulation result.
func ActivityOf(r gcn.Result, cfg hw.Config) Activity {
	a := Activity{}
	if peak := cfg.PeakGFLOPS(); peak > 0 {
		a.Compute = clamp01(r.AchievedGFLOPS / peak)
	}
	if peak := cfg.PeakBandwidthGBs(); peak > 0 {
		a.Memory = clamp01(r.AchievedGBs / peak)
	}
	// Divergent or integer-heavy kernels achieve few FLOPs while the
	// pipelines stay busy; keep a floor so "low FLOPs" never reads as
	// "idle shader array".
	if a.Compute < 0.1 {
		a.Compute = 0.1
	}
	return a
}

// PowerW returns board power for a configuration under the given
// activity.
func (m Model) PowerW(cfg hw.Config, a Activity) float64 {
	v := m.Voltage(cfg.CoreClockMHz)
	vn := v / m.VMax
	fn := cfg.CoreClockMHz / m.FMax
	cu := float64(cfg.CUs) * (m.LeakPerCUW*vn + m.DynPerCUW*fn*vn*vn*a.Compute)
	mem := m.MemIdleW + m.MemClockW*cfg.MemClockMHz +
		m.MemDynW*(cfg.MemClockMHz/1250)*a.Memory
	return m.BaseW + cu + mem
}

// Report is the energy accounting of one simulated execution.
type Report struct {
	// PowerW is mean board power during the kernel.
	PowerW float64
	// EnergyJ is PowerW x kernel time.
	EnergyJ float64
	// EDP is energy x time (J*s), the energy-delay product.
	EDP float64
	// PerfPerWatt is throughput per watt (work-items/ns/W).
	PerfPerWatt float64
}

// Measure simulates a kernel on a configuration and derives its
// energy report.
func Measure(m Model, k *kernel.Kernel, cfg hw.Config) (gcn.Result, Report, error) {
	if err := m.Validate(); err != nil {
		return gcn.Result{}, Report{}, err
	}
	r, err := gcn.Simulate(k, cfg)
	if err != nil {
		return gcn.Result{}, Report{}, err
	}
	return r, m.report(r, cfg), nil
}

func (m Model) report(r gcn.Result, cfg hw.Config) Report {
	p := m.PowerW(cfg, ActivityOf(r, cfg))
	seconds := r.TimeNS * 1e-9
	e := p * seconds
	rep := Report{PowerW: p, EnergyJ: e, EDP: e * seconds}
	if p > 0 {
		rep.PerfPerWatt = r.Throughput / p
	}
	return rep
}

// Optimum names a configuration-selection objective.
type Optimum int

// Objectives for BestConfig.
const (
	// MinEnergy minimises joules per kernel invocation.
	MinEnergy Optimum = iota
	// MinEDP minimises the energy-delay product.
	MinEDP
	// MaxPerfPerWatt maximises throughput per watt.
	MaxPerfPerWatt
)

// String names the objective.
func (o Optimum) String() string {
	switch o {
	case MinEnergy:
		return "min-energy"
	case MinEDP:
		return "min-edp"
	case MaxPerfPerWatt:
		return "max-perf-per-watt"
	default:
		return fmt.Sprintf("optimum(%d)", int(o))
	}
}

// BestConfig sweeps a kernel over a space and returns the
// configuration optimising the objective, with its report.
func BestConfig(m Model, k *kernel.Kernel, space hw.Space, obj Optimum) (hw.Config, Report, error) {
	if err := m.Validate(); err != nil {
		return hw.Config{}, Report{}, err
	}
	var bestCfg hw.Config
	var bestRep Report
	found := false
	better := func(a, b Report) bool {
		switch obj {
		case MinEnergy:
			return a.EnergyJ < b.EnergyJ
		case MinEDP:
			return a.EDP < b.EDP
		case MaxPerfPerWatt:
			return a.PerfPerWatt > b.PerfPerWatt
		default:
			return false
		}
	}
	for _, cfg := range space.Configs() {
		r, err := gcn.Simulate(k, cfg)
		if err != nil {
			return hw.Config{}, Report{}, err
		}
		rep := m.report(r, cfg)
		if !found || better(rep, bestRep) {
			bestCfg, bestRep, found = cfg, rep, true
		}
	}
	if !found {
		return hw.Config{}, Report{}, fmt.Errorf("power: empty configuration space")
	}
	return bestCfg, bestRep, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
