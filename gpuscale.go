// Package gpuscale reproduces "A Taxonomy of GPGPU Performance
// Scaling" (IISWC 2015) as a library: a configurable GCN-class GPU
// timing simulator, a 267-kernel behavioural benchmark corpus, a
// parallel sweep harness for the paper's 891-configuration grid, and
// the taxonomy pipeline that classifies how each kernel's performance
// responds to compute units, core clock, and memory bandwidth.
//
// This root package is a thin facade: it re-exports the stable types
// and entry points from the internal packages so downstream users
// never import internal paths. The typical flow is
//
//	space := gpuscale.StudySpace()                  // 891 configs
//	ks := gpuscale.CorpusKernels()                  // 267 kernels
//	m, err := gpuscale.RunSweep(ks, space, gpuscale.SweepOptions{})
//	cs := gpuscale.Classify(m)                      // taxonomy verdicts
//
// or, for the paper's full set of tables and figures in one call,
//
//	study, err := gpuscale.NewStudy()
//	fmt.Println(study.TableR3())
package gpuscale

import (
	"context"

	"gpuscale/internal/core"
	"gpuscale/internal/experiments"
	"gpuscale/internal/fault"
	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/suites"
	"gpuscale/internal/sweep"
)

// Re-exported types. These are aliases, so values flow freely between
// the facade and the internal packages.
type (
	// Config is one hardware configuration (CUs, core clock, memory
	// clock).
	Config = hw.Config
	// Space is a sweep grid over the three hardware knobs.
	Space = hw.Space
	// Kernel is the behavioural description of one GPGPU kernel.
	Kernel = kernel.Kernel
	// KernelBuilder assembles kernels fluently; see NewKernel.
	KernelBuilder = kernel.Builder
	// SimResult is one simulated execution.
	SimResult = gcn.Result
	// EngineFunc is the simulator signature shared by every engine
	// (and by fault-injecting wrappers around them).
	EngineFunc = gcn.EngineFunc
	// SweepOptions configures RunSweep.
	SweepOptions = sweep.Options
	// Matrix holds sweep measurements (kernels x configurations).
	Matrix = sweep.Matrix
	// CellStatus is the terminal state of one sweep cell.
	CellStatus = sweep.CellStatus
	// RunReport accounts for every cell of a sweep run.
	RunReport = sweep.RunReport
	// CellFailure identifies one failed sweep cell.
	CellFailure = sweep.CellFailure
	// SweepJournal checkpoints completed sweep rows to a checksummed
	// journal file so interrupted runs resume where they stopped;
	// torn or corrupt tails are salvaged, not fatal.
	SweepJournal = sweep.Journal
	// FaultInjector wraps an engine with deterministic, seed-driven
	// transient errors, corrupt results, and stalls — the test rig
	// for flaky-hardware robustness drills.
	FaultInjector = fault.Injector
	// Surface is one kernel's performance over the grid.
	Surface = core.Surface
	// Classification is the taxonomy verdict for one kernel.
	Classification = core.Classification
	// Category is a combined scaling class.
	Category = core.Category
	// BenchSuite is one corpus suite.
	BenchSuite = suites.Suite
	// Study bundles a full end-to-end run with table/figure renderers.
	Study = experiments.Study
)

// AccessPattern describes a kernel's spatial memory-access structure.
type AccessPattern = kernel.AccessPattern

// Re-exported access patterns.
const (
	Streaming    = kernel.Streaming
	Tiled        = kernel.Tiled
	Strided      = kernel.Strided
	Gather       = kernel.Gather
	PointerChase = kernel.PointerChase
)

// Re-exported taxonomy categories.
const (
	CompCoupled        = core.CompCoupled
	BWCoupled          = core.BWCoupled
	Balanced           = core.Balanced
	ParallelismLimited = core.ParallelismLimited
	LatencyBound       = core.LatencyBound
	CUIntolerant       = core.CUIntolerant
	LaunchBound        = core.LaunchBound
	Irregular          = core.Irregular
	// LowCoverage marks kernels whose sweep lost too many cells to
	// classify trustworthily.
	LowCoverage = core.LowCoverage
)

// Re-exported sweep cell statuses.
const (
	CellOK       = sweep.StatusOK
	CellFailed   = sweep.StatusFailed
	CellCanceled = sweep.StatusCanceled
	// CellStalled marks a cell whose engine call ignored cancellation
	// and was abandoned by the stall watchdog.
	CellStalled = sweep.StatusStalled
	// CellQuarantined marks a cell skipped by the circuit breaker
	// after too many consecutive hard failures in its kernel's row.
	CellQuarantined = sweep.StatusQuarantined
)

// StudySpace returns the paper's 891-point configuration grid
// (11 CU counts x 9 core clocks x 9 memory clocks).
func StudySpace() Space { return hw.StudySpace() }

// NewSpace builds a custom validated sweep grid.
func NewSpace(cus []int, coreMHz, memMHz []float64) (Space, error) {
	return hw.NewSpace(cus, coreMHz, memMHz)
}

// ReferenceConfig returns the flagship configuration (44 CUs, top
// clocks).
func ReferenceConfig() Config { return hw.Reference() }

// NewKernel starts a kernel builder with sensible defaults.
func NewKernel(suite, program, name string) *KernelBuilder {
	return kernel.New(suite, program, name)
}

// Corpus constructs the deterministic 8-suite, 97-program, 267-kernel
// benchmark corpus.
func Corpus() []BenchSuite { return suites.Corpus() }

// CorpusKernels flattens the corpus into its kernel list.
func CorpusKernels() []*Kernel { return suites.AllKernels(suites.Corpus()) }

// Simulate runs one kernel on one configuration with the fast round
// engine.
func Simulate(k *Kernel, cfg Config) (SimResult, error) { return gcn.Simulate(k, cfg) }

// SimulateDetailed runs the continuous-dispatch high-fidelity engine.
func SimulateDetailed(k *Kernel, cfg Config) (SimResult, error) {
	return gcn.SimulateDetailed(k, cfg)
}

// SimulateWave runs the wavefront-level event engine, the slowest and
// most detailed of the three; use it for validation on launches up to
// a few thousand workgroups.
func SimulateWave(k *Kernel, cfg Config) (SimResult, error) {
	return gcn.SimulateWave(k, cfg)
}

// SimulatePipeline runs the execution-driven cycle-level engine: the
// kernel is lowered to an instruction stream (mini ISA) and one
// resident set is interpreted cycle by cycle with issue arbitration
// and a load scoreboard. Validation use only.
func SimulatePipeline(k *Kernel, cfg Config) (SimResult, error) {
	return gcn.SimulatePipeline(k, cfg)
}

// Product is a named product-tier configuration.
type Product = hw.Product

// Products returns the modelled product ladder, embedded to flagship.
func Products() []Product { return hw.Products() }

// RunSweep measures every kernel on every configuration in parallel
// with strict semantics: any cell still failed after retries turns the
// sweep into an error. Use RunSweepContext for cancellation and
// graceful degradation to partial matrices.
func RunSweep(ks []*Kernel, space Space, opts SweepOptions) (*Matrix, error) {
	return sweep.Run(ks, space, opts)
}

// RunSweepContext measures every kernel on every configuration,
// tolerating per-cell failures: failed cells are marked in the
// matrix's Status plane and accounted for in the report instead of
// aborting the sweep. Cancelling the context stops the sweep promptly
// and still returns the partial matrix and a complete report.
func RunSweepContext(ctx context.Context, ks []*Kernel, space Space, opts SweepOptions) (*Matrix, *RunReport, error) {
	return sweep.RunContext(ctx, ks, space, opts)
}

// ResumeSweep completes a partial sweep: fully measured rows of prior
// are reused verbatim and only missing or failed rows are recomputed.
func ResumeSweep(ctx context.Context, ks []*Kernel, space Space, opts SweepOptions, prior *Matrix) (*Matrix, *RunReport, error) {
	return sweep.Resume(ctx, ks, space, opts, prior)
}

// OpenSweepJournal opens or creates a row-level sweep checkpoint file;
// wire its AppendRow into SweepOptions.OnRow and pass Prior to
// ResumeSweep to make long sweeps crash-safe.
func OpenSweepJournal(path string, space Space) (*SweepJournal, error) {
	return sweep.OpenJournal(path, space)
}

// Classify runs the rule-based taxonomy over a sweep matrix with
// default thresholds.
func Classify(m *Matrix) []Classification {
	return core.DefaultClassifier().ClassifyAll(core.Surfaces(m))
}

// ClassifySurface labels a single surface.
func ClassifySurface(s Surface) Classification {
	return core.DefaultClassifier().Classify(s)
}

// Surfaces extracts per-kernel scaling surfaces from a matrix.
func Surfaces(m *Matrix) []Surface { return core.Surfaces(m) }

// NewStudy runs the complete reproduction pipeline: corpus, full
// sweep, classification. Use the Study's TableRn/FigRn methods to
// regenerate the paper's artifacts.
func NewStudy() (*Study, error) { return experiments.New() }
