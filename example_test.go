package gpuscale_test

import (
	"fmt"

	"gpuscale"
)

// Describe a kernel behaviourally and simulate it on the flagship
// configuration.
func ExampleSimulate() {
	k := gpuscale.NewKernel("demo", "solver", "gemm").
		Geometry(4096, 256).
		Compute(24000, 800).
		MustBuild()
	r, err := gpuscale.Simulate(k, gpuscale.ReferenceConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("bound by %v\n", r.Bound)
	// Output: bound by compute
}

// Sweep the paper's 891-configuration grid and classify the scaling
// behaviour.
func ExampleClassify() {
	k := gpuscale.NewKernel("demo", "post", "stream").
		Geometry(4096, 256).
		Compute(300, 50).
		Access(gpuscale.Streaming, 256, 64, 4).
		MustBuild()
	m, err := gpuscale.RunSweep([]*gpuscale.Kernel{k},
		gpuscale.StudySpace(), gpuscale.SweepOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	c := gpuscale.Classify(m)[0]
	fmt.Printf("%v (memory axis: %v)\n", c.Category, c.MemShape)
	// Output: bw-coupled (memory axis: linear)
}

// The study grid reconstructs the paper's 891 configurations.
func ExampleStudySpace() {
	s := gpuscale.StudySpace()
	fmt.Printf("%d configurations (%d CU settings x %d core clocks x %d memory clocks)\n",
		s.Size(), len(s.CUCounts), len(s.CoreClocksMHz), len(s.MemClocksMHz))
	// Output: 891 configurations (11 CU settings x 9 core clocks x 9 memory clocks)
}

// The corpus matches the paper's population exactly.
func ExampleCorpus() {
	suites := gpuscale.Corpus()
	programs, kernels := 0, 0
	for _, s := range suites {
		programs += len(s.Programs)
		kernels += s.KernelCount()
	}
	fmt.Printf("%d suites, %d programs, %d kernels\n", len(suites), programs, kernels)
	// Output: 8 suites, 97 programs, 267 kernels
}

// Energy accounting with the DVFS power model.
func ExampleMeasureEnergy() {
	k := gpuscale.NewKernel("demo", "app", "tiny").
		Geometry(64, 256).
		MustBuild()
	_, rep, err := gpuscale.MeasureEnergy(gpuscale.DefaultPowerModel(), k, gpuscale.ReferenceConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("power within TDP: %v\n", rep.PowerW > 0 && rep.PowerW < 300)
	// Output: power within TDP: true
}
