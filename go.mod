module gpuscale

go 1.22
