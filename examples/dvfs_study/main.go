// DVFS study: how much performance does each scaling class give back
// when the clocks drop? A power-capped deployment wants to slow the
// knob each kernel does NOT depend on — this example shows the
// taxonomy answering exactly that question for three corpus kernels.
//
//	go run ./examples/dvfs_study
package main

import (
	"fmt"
	"log"

	"gpuscale"
)

func main() {
	// Sweep the whole corpus once and pick an exemplar per class.
	m, err := gpuscale.RunSweep(gpuscale.CorpusKernels(), gpuscale.StudySpace(), gpuscale.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cs := gpuscale.Classify(m)

	pick := func(cat gpuscale.Category) *gpuscale.Classification {
		for i := range cs {
			if cs[i].Category == cat {
				return &cs[i]
			}
		}
		return nil
	}

	fmt.Println("What fraction of peak performance survives a 40% clock cut?")
	fmt.Println()
	for _, cat := range []gpuscale.Category{
		gpuscale.CompCoupled, gpuscale.BWCoupled, gpuscale.LatencyBound,
	} {
		c := pick(cat)
		if c == nil {
			log.Fatalf("no %v kernel in corpus", cat)
		}
		k := findKernel(c.Kernel)

		full := gpuscale.ReferenceConfig()
		coreCut := full
		coreCut.CoreClockMHz = 600 // 40% core-clock cut
		memCut := full
		memCut.MemClockMHz = 700 // ~44% memory-clock cut

		rFull := mustSim(k, full)
		rCore := mustSim(k, coreCut)
		rMem := mustSim(k, memCut)

		fmt.Printf("%-16s (%s)\n", cat, c.Kernel)
		fmt.Printf("  core clock 1000 -> 600 MHz keeps %4.0f%% of performance\n",
			100*rCore.Throughput/rFull.Throughput)
		fmt.Printf("  mem clock 1250 -> 700 MHz keeps %4.0f%% of performance\n",
			100*rMem.Throughput/rFull.Throughput)
		switch cat {
		case gpuscale.CompCoupled:
			fmt.Println("  -> safe to slow memory, never the core")
		case gpuscale.BWCoupled:
			fmt.Println("  -> safe to slow the core, never memory")
		case gpuscale.LatencyBound:
			fmt.Println("  -> both clocks are cheap to cut; latency dominates anyway")
		}
		fmt.Println()
	}
}

func findKernel(name string) *gpuscale.Kernel {
	for _, k := range gpuscale.CorpusKernels() {
		if k.Name == name {
			return k
		}
	}
	log.Fatalf("kernel %q vanished from corpus", name)
	return nil
}

func mustSim(k *gpuscale.Kernel, cfg gpuscale.Config) gpuscale.SimResult {
	r, err := gpuscale.Simulate(k, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
