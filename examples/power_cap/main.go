// Power cap: run a mixed workload under a 150 W board power cap and
// compare three governors — exhaustive oracle, one-size-fits-all
// static, and the taxonomy-guided governor that knows which knob each
// scaling class can cut for free.
//
//	go run ./examples/power_cap
package main

import (
	"fmt"
	"log"

	"gpuscale"
)

func main() {
	// A mixed workload: a dense solver iteration (compute-coupled)
	// followed by a streaming post-process (bandwidth-coupled).
	w := gpuscale.GovernedWorkload{
		{
			Kernel: gpuscale.NewKernel("app", "solver", "dense").
				Geometry(4096, 256).Compute(25000, 500).MustBuild(),
			Launches: 10,
			Category: gpuscale.CompCoupled,
		},
		{
			Kernel: gpuscale.NewKernel("app", "post", "stream").
				Geometry(4096, 256).Compute(300, 50).
				Access(gpuscale.Streaming, 256, 64, 4).MustBuild(),
			Launches: 10,
			Category: gpuscale.BWCoupled,
		},
	}
	space, err := gpuscale.NewSpace(
		[]int{4, 12, 20, 28, 36, 44},
		[]float64{200, 400, 600, 800, 1000},
		[]float64{150, 425, 700, 975, 1250})
	if err != nil {
		log.Fatal(err)
	}
	pm := gpuscale.DefaultPowerModel()
	const cap = 150 // watts; flagship full load is ~270 W

	oracle, err := gpuscale.GovernOracle(pm, w, space, cap)
	if err != nil {
		log.Fatal(err)
	}
	static, err := gpuscale.GovernStatic(pm, w, space, cap)
	if err != nil {
		log.Fatal(err)
	}
	guided, err := gpuscale.GovernByTaxonomy(pm, w, space, cap)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mixed workload under a %d W cap:\n\n", cap)
	fmt.Printf("  %-18s %10s %8s\n", "governor", "makespan", "trials")
	show := func(name string, o gpuscale.GovernorOutcome) {
		fmt.Printf("  %-18s %7.2f ms %8d\n", name, o.TotalTimeNS/1e6, o.TotalTrials)
	}
	show("oracle", oracle)
	show("static best", static)
	show("taxonomy-guided", guided)

	fmt.Println("\nper-kernel choices of the taxonomy-guided governor:")
	for i, d := range guided.Decisions {
		fmt.Printf("  %-22s -> %-26s %5.0f W, %d trial(s)\n",
			w[i].Kernel.Name, d.Config, d.PowerW, d.Trials)
	}
	fmt.Println("\nthe compute-coupled kernel keeps its core clock and sheds the")
	fmt.Println("memory clock; the bandwidth-coupled kernel does the opposite —")
	fmt.Println("that asymmetry is exactly what the taxonomy encodes.")
}
