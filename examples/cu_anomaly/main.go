// CU anomaly hunt: find every corpus kernel that LOSES performance
// when compute units are added — the paper's most counter-intuitive
// class — and explain the mechanism with the simulator's cache
// statistics.
//
//	go run ./examples/cu_anomaly
package main

import (
	"fmt"
	"log"
	"sort"

	"gpuscale"
)

func main() {
	m, err := gpuscale.RunSweep(gpuscale.CorpusKernels(), gpuscale.StudySpace(), gpuscale.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cs := gpuscale.Classify(m)

	var anomalies []gpuscale.Classification
	for _, c := range cs {
		if c.Category == gpuscale.CUIntolerant {
			anomalies = append(anomalies, c)
		}
	}
	if len(anomalies) == 0 {
		log.Fatal("no CU-intolerant kernels found")
	}
	// Sort by how much performance the last CUs destroy.
	sort.Slice(anomalies, func(i, j int) bool {
		li := anomalies[i].CU.Gain / anomalies[i].CU.PeakGain
		lj := anomalies[j].CU.Gain / anomalies[j].CU.PeakGain
		return li < lj
	})

	fmt.Printf("%d of %d kernels lose performance when CUs are added\n\n",
		len(anomalies), len(cs))
	worst := anomalies[0]
	fmt.Printf("worst offender: %s\n", worst.Kernel)
	fmt.Printf("  peaks at %g CUs, then loses %.0f%% of peak by 44 CUs\n\n",
		worst.CU.Settings[worst.CU.PeakIndex],
		100*(1-worst.CU.Gain/worst.CU.PeakGain))

	// Explain the mechanism: re-simulate at the peak and at 44 CUs and
	// compare L2 behaviour.
	k := findKernel(worst.Kernel)
	peak := gpuscale.ReferenceConfig()
	peak.CUs = int(worst.CU.Settings[worst.CU.PeakIndex])
	full := gpuscale.ReferenceConfig()

	rPeak := mustSim(k, peak)
	rFull := mustSim(k, full)
	fmt.Printf("mechanism (shared 1 MiB L2 vs aggregate working set):\n")
	fmt.Printf("  at %2d CUs: L2 hit rate %.2f, DRAM traffic %6.1f GB/s, bound by %v\n",
		peak.CUs, rPeak.HitRates.L2, rPeak.AchievedGBs, rPeak.Bound)
	fmt.Printf("  at %2d CUs: L2 hit rate %.2f, DRAM traffic %6.1f GB/s, bound by %v\n",
		full.CUs, rFull.HitRates.L2, rFull.AchievedGBs, rFull.Bound)
	fmt.Println("\nmore resident workgroups -> aggregate footprint overflows the")
	fmt.Println("fixed L2 -> every unit of work now moves more DRAM bytes -> the")
	fmt.Println("already-saturated channel stretches total runtime.")

	// Causal check: on hypothetical hardware whose L2 grows with the
	// CU count (as it does across product tiers), the decline should
	// disappear.
	fmt.Println("\nwhat-if the L2 scaled with CUs (1 MiB x cu/44):")
	for _, cu := range []int{int(worst.CU.Settings[worst.CU.PeakIndex]), 44} {
		cfg := gpuscale.ReferenceConfig()
		cfg.CUs = cu
		cfg.L2Override = 1024 * 1024 * cu / 44
		r := mustSim(k, cfg)
		fmt.Printf("  at %2d CUs (L2 %4d KiB): throughput %.4f items/ns, L2 hit rate %.2f\n",
			cu, cfg.L2Override/1024, r.Throughput, r.HitRates.L2)
	}
	fmt.Println("with a proportional L2 the 44-CU point wins again: the anomaly is")
	fmt.Println("a property of CU-fused parts, not of the kernel.")
}

func findKernel(name string) *gpuscale.Kernel {
	for _, k := range gpuscale.CorpusKernels() {
		if k.Name == name {
			return k
		}
	}
	log.Fatalf("kernel %q vanished from corpus", name)
	return nil
}

func mustSim(k *gpuscale.Kernel, cfg gpuscale.Config) gpuscale.SimResult {
	r, err := gpuscale.Simulate(k, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
