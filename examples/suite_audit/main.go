// Suite audit: before publishing a benchmark suite, check whether its
// inputs are large enough to exercise a modern GPU — the tooling form
// of the paper's conclusion that several existing suites no longer
// scale. This example audits a small hand-written suite and shows how
// to fix a failing kernel by scaling its input.
//
//	go run ./examples/suite_audit
package main

import (
	"fmt"
	"log"

	"gpuscale"
)

func main() {
	// A three-kernel suite a researcher might ship: note the 2012-era
	// problem size on "legacy_fft".
	mySuite := []*gpuscale.Kernel{
		gpuscale.NewKernel("mysuite", "nbody", "forces").
			Geometry(8192, 256).
			Compute(18000, 600).
			MustBuild(),
		gpuscale.NewKernel("mysuite", "legacy_fft", "radix4").
			Geometry(16, 256). // sized for a 4-CU GPU ten years ago
			Compute(40000, 800).
			MustBuild(),
		gpuscale.NewKernel("mysuite", "spmv", "csr").
			Geometry(4096, 256).
			Access(gpuscale.Gather, 192, 16, 4).
			Coalescing(0.3).
			MustBuild(),
	}

	audit(mySuite, "original inputs")

	// Fix: scale the legacy kernel's grid to a modern size and re-audit.
	fixed := gpuscale.NewKernel("mysuite", "legacy_fft", "radix4").
		Geometry(4096, 256).
		Compute(40000, 800).
		MustBuild()
	mySuite[1] = fixed
	audit(mySuite, "after scaling legacy_fft's input")
}

func audit(ks []*gpuscale.Kernel, label string) {
	m, err := gpuscale.RunSweep(ks, gpuscale.StudySpace(), gpuscale.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== audit: %s ==\n", label)
	for _, c := range gpuscale.Classify(m) {
		eff := c.CU.Efficiency
		verdict := "ok"
		if c.Category == gpuscale.ParallelismLimited || c.Category == gpuscale.LaunchBound {
			verdict = "UNDERSIZED for a 44-CU GPU"
		} else if eff < 0.3 && c.Category != gpuscale.BWCoupled && c.Category != gpuscale.LatencyBound {
			verdict = "check input size"
		}
		fmt.Printf("  %-24s %-20s CU efficiency %.2f  %s\n",
			c.Kernel, c.Category.String(), eff, verdict)
	}
	fmt.Println()
}
