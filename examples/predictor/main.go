// Predictor: the taxonomy's observation that kernels fall into a small
// number of scaling families makes whole-surface prediction cheap.
// Train canonical scaling surfaces on half the corpus, then predict a
// brand-new kernel's performance on all 891 configurations from just
// 5 probe measurements — and check the prediction against the truth.
//
//	go run ./examples/predictor
package main

import (
	"fmt"
	"log"
	"math"

	"gpuscale"
)

func main() {
	// Full sweep of the corpus (fast: the round engine does all
	// 237,897 simulations in well under a second).
	m, err := gpuscale.RunSweep(gpuscale.CorpusKernels(), gpuscale.StudySpace(), gpuscale.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	train, test := gpuscale.SplitMatrix(m)
	p, err := gpuscale.TrainPredictor(train, 12, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d canonical scaling surfaces from %d kernels\n",
		p.Clusters(), len(train.Kernels))
	fmt.Printf("probe configurations a new kernel must measure (%d of %d):\n",
		len(p.Probes()), gpuscale.StudySpace().Size())
	for _, cfg := range p.Probes() {
		fmt.Printf("  %v\n", cfg)
	}

	// Predict one unseen kernel from its probes alone.
	victim := 0
	truth := test.Throughput[victim]
	probes := make([]float64, len(p.Probes()))
	for i, cfg := range p.Probes() {
		probes[i] = truth[test.Space.Index(cfg)]
	}
	pred, err := p.Predict(probes)
	if err != nil {
		log.Fatal(err)
	}
	var sumErr, worst float64
	for c := range truth {
		ape := math.Abs(pred[c]-truth[c]) / truth[c]
		sumErr += ape
		if ape > worst {
			worst = ape
		}
	}
	fmt.Printf("\npredicting %s on all %d configurations from 5 probes:\n",
		test.Kernels[victim], len(truth))
	fmt.Printf("  mean abs error  %.1f%%\n", 100*sumErr/float64(len(truth)))
	fmt.Printf("  worst abs error %.1f%%\n", 100*worst)

	// And the aggregate over the whole unseen half.
	acc, err := gpuscale.EvaluatePredictor(p, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nover all %d held-out kernels: MAPE %.1f%%, P90 %.1f%%\n",
		acc.Kernels, 100*acc.MAPE, 100*acc.P90APE)
}
