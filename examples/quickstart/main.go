// Quickstart: describe a kernel behaviourally, simulate it across
// hardware configurations, and ask the taxonomy how it scales.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gpuscale"
)

func main() {
	// 1. Describe a kernel: a tiled matrix-multiply-like workload.
	gemm := gpuscale.NewKernel("myapp", "solver", "gemm_tile").
		Geometry(4096, 256).       // 4096 workgroups of 256 work-items
		Compute(24000, 800).       // VALU/SALU instructions per wavefront
		Resources(64, 64, 16384).  // VGPRs, SGPRs, LDS bytes
		Locality(32*1024, 0.2, 6). // working set, sharing, reuse
		MustBuild()

	// 2. One-off simulation on the flagship configuration.
	ref := gpuscale.ReferenceConfig()
	r, err := gpuscale.Simulate(gemm, ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %v:\n", gemm.Name, ref)
	fmt.Printf("  time        %.1f us\n", r.TimeNS/1000)
	fmt.Printf("  achieved    %.0f GFLOP/s of %.0f peak\n", r.AchievedGFLOPS, ref.PeakGFLOPS())
	fmt.Printf("  bound by    %v\n\n", r.Bound)

	// 3. Sweep the paper's full 891-configuration grid and classify.
	m, err := gpuscale.RunSweep([]*gpuscale.Kernel{gemm}, gpuscale.StudySpace(), gpuscale.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}
	c := gpuscale.Classify(m)[0]
	fmt.Printf("taxonomy verdict for %s:\n", c.Kernel)
	fmt.Printf("  vs compute units : %v (%.1fx over an 11x range)\n", c.CUShape, c.CU.Gain)
	fmt.Printf("  vs core clock    : %v (%.1fx over a 5x range)\n", c.CoreShape, c.Core.Gain)
	fmt.Printf("  vs memory clock  : %v (%.1fx over an 8.3x range)\n", c.MemShape, c.Mem.Gain)
	fmt.Printf("  category         : %v\n", c.Category)
}
