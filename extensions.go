package gpuscale

// Facade surface for the three extensions built on top of the
// reproduction: the DVFS power/energy model (internal/power), the
// cluster-based scaling predictor (internal/predict), and the
// taxonomy-guided power-cap governor (internal/governor).

import (
	"gpuscale/internal/governor"
	"gpuscale/internal/power"
	"gpuscale/internal/predict"
)

// Power & energy.
type (
	// PowerModel holds the DVFS power-model coefficients.
	PowerModel = power.Model
	// EnergyReport is the per-execution energy accounting.
	EnergyReport = power.Report
	// EnergyObjective selects what BestConfig optimises.
	EnergyObjective = power.Optimum
)

// Energy objectives.
const (
	MinEnergy      = power.MinEnergy
	MinEDP         = power.MinEDP
	MaxPerfPerWatt = power.MaxPerfPerWatt
)

// DefaultPowerModel returns Hawaii-plausible power coefficients.
func DefaultPowerModel() PowerModel { return power.DefaultModel() }

// MeasureEnergy simulates a kernel and reports power, energy, EDP,
// and perf/W.
func MeasureEnergy(m PowerModel, k *Kernel, cfg Config) (SimResult, EnergyReport, error) {
	return power.Measure(m, k, cfg)
}

// BestEnergyConfig sweeps a space and returns the configuration
// optimising the objective for the kernel.
func BestEnergyConfig(m PowerModel, k *Kernel, space Space, obj EnergyObjective) (Config, EnergyReport, error) {
	return power.BestConfig(m, k, space, obj)
}

// Prediction.
type (
	// Predictor predicts full scaling surfaces from probe runs.
	Predictor = predict.Predictor
	// PredictionAccuracy summarises held-out prediction error.
	PredictionAccuracy = predict.Accuracy
)

// TrainPredictor clusters a sweep's normalised surfaces into k
// canonical scaling families.
func TrainPredictor(m *Matrix, k int, seed int64) (*Predictor, error) {
	return predict.Train(m, k, seed)
}

// EvaluatePredictor scores a predictor against a fully measured test
// matrix using only the probe cells as input.
func EvaluatePredictor(p *Predictor, test *Matrix) (PredictionAccuracy, error) {
	return predict.Evaluate(p, test)
}

// SplitMatrix partitions a matrix into train/test halves by row
// parity.
func SplitMatrix(m *Matrix) (train, test *Matrix) { return predict.SplitMatrix(m) }

// Governor.
type (
	// WorkloadItem is one kernel of a governed workload.
	WorkloadItem = governor.Item
	// GovernedWorkload is a sequence of kernels with launch counts.
	GovernedWorkload = governor.Workload
	// GovernorOutcome aggregates a governor's decisions.
	GovernorOutcome = governor.Outcome
)

// GovernOracle picks the per-kernel optimal cap-fitting configuration
// by exhaustive search.
func GovernOracle(m PowerModel, w GovernedWorkload, space Space, capW float64) (GovernorOutcome, error) {
	return governor.Oracle(m, w, space, capW)
}

// GovernStatic picks the single best cap-fitting configuration for the
// whole workload.
func GovernStatic(m PowerModel, w GovernedWorkload, space Space, capW float64) (GovernorOutcome, error) {
	return governor.Static(m, w, space, capW)
}

// GovernByTaxonomy walks each kernel's category preference order,
// simulating only until a cap-fitting configuration is found.
func GovernByTaxonomy(m PowerModel, w GovernedWorkload, space Space, capW float64) (GovernorOutcome, error) {
	return governor.TaxonomyGuided(m, w, space, capW)
}

// GovernWithHysteresis post-processes a per-kernel decision sequence
// against DVFS transition costs, holding the previous configuration
// whenever switching cannot repay its stall.
func GovernWithHysteresis(m PowerModel, w GovernedWorkload, decisions []governor.Decision, capW, transitionNS float64) (GovernorOutcome, error) {
	return governor.Hysteresis(m, w, decisions, capW, transitionNS)
}

// GovernorDecision is one governor choice for one workload item.
type GovernorDecision = governor.Decision

// MakespanWithTransitions returns an outcome's makespan including
// configuration-switch stalls at the given per-switch cost.
func MakespanWithTransitions(o GovernorOutcome, transitionNS float64) float64 {
	return governor.WithTransitions(o, transitionNS)
}
