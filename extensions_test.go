package gpuscale

import "testing"

func TestFacadeEnergy(t *testing.T) {
	m := DefaultPowerModel()
	k := NewKernel("e", "p", "k").MustBuild()
	r, rep, err := MeasureEnergy(m, k, ReferenceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.TimeNS <= 0 || rep.EnergyJ <= 0 {
		t.Fatalf("degenerate energy measurement: %+v %+v", r, rep)
	}
	space, err := NewSpace([]int{4, 44}, []float64{200, 1000}, []float64{150, 1250})
	if err != nil {
		t.Fatal(err)
	}
	cfg, rep2, err := BestEnergyConfig(m, k, space, MinEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("best config invalid: %v", err)
	}
	if rep2.EnergyJ <= 0 {
		t.Fatalf("best report: %+v", rep2)
	}
}

func TestFacadePredictor(t *testing.T) {
	m, err := RunSweep(CorpusKernels()[:40], StudySpace(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	train, test := SplitMatrix(m)
	p, err := TrainPredictor(train, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := EvaluatePredictor(p, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Kernels != len(test.Kernels) || acc.MAPE < 0 {
		t.Fatalf("accuracy %+v", acc)
	}
}

func TestFacadeGovernor(t *testing.T) {
	space, err := NewSpace([]int{4, 24, 44}, []float64{200, 600, 1000}, []float64{150, 700, 1250})
	if err != nil {
		t.Fatal(err)
	}
	w := GovernedWorkload{{
		Kernel:   NewKernel("g", "p", "k").MustBuild(),
		Launches: 2,
		Category: BWCoupled,
	}}
	pm := DefaultPowerModel()
	const cap = 200
	for name, govern := range map[string]func(PowerModel, GovernedWorkload, Space, float64) (GovernorOutcome, error){
		"oracle": GovernOracle, "static": GovernStatic, "taxonomy": GovernByTaxonomy,
	} {
		out, err := govern(pm, w, space, cap)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.TotalTimeNS <= 0 || len(out.Decisions) != 1 {
			t.Fatalf("%s outcome %+v", name, out)
		}
		if out.Decisions[0].PowerW > cap {
			t.Fatalf("%s violated cap: %+v", name, out.Decisions[0])
		}
	}
}
