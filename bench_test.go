package gpuscale

// The benchmark harness: one testing.B per table and figure of the
// reproduction (see DESIGN.md's per-experiment index), plus ablation
// and micro benchmarks for the substrates. Each artifact benchmark
// regenerates its table/figure from the shared study; run
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured discussion of every
// artifact.

import (
	"context"
	"sync"
	"testing"

	"gpuscale/internal/experiments"
	"gpuscale/internal/gcn"
	"gpuscale/internal/hw"
	"gpuscale/internal/kernel"
	"gpuscale/internal/memory"
	"gpuscale/internal/stats"
	"gpuscale/internal/suites"
	"gpuscale/internal/sweep"
	"gpuscale/internal/trace"
)

var benchStudy = sync.OnceValues(experiments.New)

func study(b *testing.B) *experiments.Study {
	b.Helper()
	s, err := benchStudy()
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// sink prevents dead-code elimination of benchmark results.
var sink any

// --- End-to-end: the full data-collection pass of the paper. ---

// BenchmarkFullStudy measures the complete pipeline: corpus
// construction, the 267x891 sweep, and rule-based classification.
func BenchmarkFullStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.New()
		if err != nil {
			b.Fatal(err)
		}
		sink = s
	}
}

// --- Tables. ---

func BenchmarkTableR1(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = s.TableR1().String()
	}
}

func BenchmarkTableR2(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = s.TableR2().String()
	}
}

func BenchmarkTableR3(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = s.TableR3().String()
	}
}

func BenchmarkTableR4(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = s.TableR4().String()
	}
}

func BenchmarkTableR5(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.TableR5()
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

func BenchmarkTableR6(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.TableR6(8)
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

// --- Figures. ---

func BenchmarkFigR1(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.FigR1()
		if err != nil {
			b.Fatal(err)
		}
		sink = out
	}
}

func BenchmarkFigR2(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.FigR2()
		if err != nil {
			b.Fatal(err)
		}
		sink = out
	}
}

func BenchmarkFigR3(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.FigR3()
		if err != nil {
			b.Fatal(err)
		}
		sink = out
	}
}

func BenchmarkFigR4(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.FigR4(8)
		if err != nil {
			b.Fatal(err)
		}
		sink = out
	}
}

func BenchmarkFigR5(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.FigR5(10)
		if err != nil {
			b.Fatal(err)
		}
		sink = out
	}
}

func BenchmarkFigR6(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.FigR6()
		if err != nil {
			b.Fatal(err)
		}
		sink = out
	}
}

func BenchmarkFigR7(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = s.FigR7()
	}
}

func BenchmarkFigR8(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.FigR8()
		if err != nil {
			b.Fatal(err)
		}
		sink = out
	}
}

func BenchmarkTableP1(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.TableP1()
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

// --- Extension tables (power, prediction, governor). ---

func BenchmarkTableE1(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.TableE1()
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

func BenchmarkTableE2(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.TableE2([]int{4, 12})
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

func BenchmarkTableE3(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.TableE3([]float64{150, 275})
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

// --- Ablations (DESIGN.md's called-out design choices). ---

func BenchmarkAblationFidelity(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.AblationFidelity(40)
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

func BenchmarkAblationThresholds(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.AblationThresholds(0.1)
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

func BenchmarkAblationCacheModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationCacheModel(7)
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

func BenchmarkAblationNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationNoise([]float64{0.05}, 5)
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

// --- Substrate micro-benchmarks. ---

func benchKernel() *kernel.Kernel {
	return kernel.New("bench", "bench", "k").Geometry(4096, 256).MustBuild()
}

func BenchmarkSimulateRound(b *testing.B) {
	k := benchKernel()
	cfg := hw.Reference()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := gcn.Simulate(k, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sink = r
	}
}

func BenchmarkSimulateDetailed(b *testing.B) {
	k := kernel.New("bench", "bench", "k").Geometry(256, 256).MustBuild()
	cfg := hw.Reference()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := gcn.SimulateDetailed(k, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sink = r
	}
}

func BenchmarkSweepSingleKernelFullGrid(b *testing.B) {
	ks := []*kernel.Kernel{benchKernel()}
	space := hw.StudySpace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := sweep.Run(ks, space, sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		sink = m
	}
}

// BenchmarkSweepNopObserver is BenchmarkSweepSingleKernelFullGrid with
// a no-op Observer attached — compare the two to price the observer
// dispatch overhead (make bench-obs asserts it stays under 5%).
func BenchmarkSweepNopObserver(b *testing.B) {
	ks := []*kernel.Kernel{benchKernel()}
	space := hw.StudySpace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _, err := sweep.RunContext(context.Background(), ks, space, sweep.Options{Observer: sweep.NopObserver{}})
		if err != nil {
			b.Fatal(err)
		}
		sink = m
	}
}

// BenchmarkSweepPath prices the prepared row path against the legacy
// per-cell path for every engine. Round runs the full 891-config study
// grid on the 4096-workgroup bench kernel; the event-driven engines
// run a 256-workgroup kernel on a 27-config grid so a single iteration
// stays in benchmark territory (cmd/benchsweep measures the full grid
// and archives the numbers in BENCH_sweep.json).
func BenchmarkSweepPath(b *testing.B) {
	small, err := hw.NewSpace([]int{8, 24, 44}, []float64{300, 600, 1000}, []float64{300, 700, 1250})
	if err != nil {
		b.Fatal(err)
	}
	smallK := kernel.New("bench", "bench", "k").Geometry(256, 256).MustBuild()
	cases := []struct {
		engine sweep.Engine
		ks     []*kernel.Kernel
		space  hw.Space
	}{
		{sweep.Round, []*kernel.Kernel{benchKernel()}, hw.StudySpace()},
		{sweep.Detailed, []*kernel.Kernel{smallK}, small},
		{sweep.Wave, []*kernel.Kernel{smallK}, small},
		{sweep.Pipeline, []*kernel.Kernel{smallK}, small},
	}
	for _, c := range cases {
		run := func(b *testing.B, opts sweep.Options) {
			opts.Workers = 1
			cells := int64(len(c.ks) * c.space.Size())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, _, err := sweep.RunContext(context.Background(), c.ks, c.space, opts)
				if err != nil {
					b.Fatal(err)
				}
				sink = m
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*cells), "ns/cell")
		}
		b.Run(c.engine.String()+"/percell", func(b *testing.B) {
			run(b, sweep.Options{Engine: c.engine, Sim: c.engine.Func()})
		})
		b.Run(c.engine.String()+"/prepared", func(b *testing.B) {
			run(b, sweep.Options{Engine: c.engine})
		})
	}
}

func BenchmarkCorpusConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = suites.Corpus()
	}
}

func BenchmarkCacheSimAccess(b *testing.B) {
	c, err := memory.NewCache(hw.L2Bytes, hw.L2LineBytes, hw.L2Ways)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*64) % (4 << 20))
	}
}

func BenchmarkTraceReplay(b *testing.B) {
	k := kernel.New("bench", "bench", "k").
		Access(kernel.Gather, 128, 32, 4).
		Locality(256*1024, 0.2, 2).
		MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := trace.Replay(k, 2, 8, 7)
		if err != nil {
			b.Fatal(err)
		}
		sink = r
	}
}

func BenchmarkKMeansCorpusVectors(b *testing.B) {
	s := study(b)
	vecs := make([][]float64, len(s.Surfaces))
	for i, sf := range s.Surfaces {
		vecs[i] = sf.ResponseVector()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := stats.KMeans(vecs, 8, 17, 4)
		if err != nil {
			b.Fatal(err)
		}
		sink = c
	}
}

func BenchmarkClassifyCorpus(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = Classify(s.Matrix)
	}
}

func BenchmarkAblationDRAMEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationDRAMEfficiency(50000, 7)
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

func BenchmarkSimulateWave(b *testing.B) {
	k := kernel.New("bench", "bench", "k").Geometry(256, 256).MustBuild()
	cfg := hw.Reference()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := gcn.SimulateWave(k, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sink = r
	}
}

func BenchmarkDRAMSimServiceLine(b *testing.B) {
	d, err := memory.NewDRAMSim(hw.Reference())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ServiceLine(uint64(i)*64, 0)
	}
}

func BenchmarkTableC1(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = s.TableC1().String()
	}
}

func BenchmarkTableI1(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.TableI1()
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

func BenchmarkTableE4(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.TableE4()
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

func BenchmarkSimulatePipeline(b *testing.B) {
	k := kernel.New("bench", "bench", "k").Geometry(256, 256).MustBuild()
	cfg := hw.Reference()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := gcn.SimulatePipeline(k, cfg)
		if err != nil {
			b.Fatal(err)
		}
		sink = r
	}
}

func BenchmarkFigC2(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.FigC2()
		if err != nil {
			b.Fatal(err)
		}
		sink = out
	}
}

func BenchmarkWhatIfScaledL2(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.WhatIfScaledL2()
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

func BenchmarkTableO1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.TableO1()
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

func BenchmarkAblationScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationScheduler()
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

func BenchmarkAblationTaxonomyFidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationTaxonomyFidelity(12)
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

func BenchmarkTableE5(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.TableE5([]float64{0, 50_000, 5_000_000})
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}

func BenchmarkTableM1(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.TableM1(8)
		if err != nil {
			b.Fatal(err)
		}
		sink = t.String()
	}
}
